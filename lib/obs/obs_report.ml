module J = Obs_json

type dist = { d_count : int; d_sum : int; d_min : int; d_max : int }

type hist = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  dists : (string * dist) list;
  hists : (string * hist) list;
  spans : (string * int) list;
}

let schema_full = "hydra_c.metrics/1"
let schema_delta = "hydra_c.metrics_delta/1"

let sort_assoc l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* ------------------------------------------------------------------ *)
(* Loading *)

let dist_of_json j =
  { d_count = J.get_int "count" j; d_sum = J.get_int "sum" j;
    d_min = J.get_int "min" j; d_max = J.get_int "max" j }

let buckets_of_json j =
  match J.get "buckets" j with
  | J.Arr items ->
      List.map
        (fun it -> (J.get_int "le" it, J.get_int "count" it))
        items
  | _ -> raise (J.Error "\"buckets\" is not an array")

let hist_of_json j =
  { h_count = J.get_int "count" j; h_sum = J.get_int "sum" j;
    h_min = J.get_int "min" j; h_max = J.get_int "max" j;
    h_buckets = buckets_of_json j }

let of_full_json j =
  { counters =
      sort_assoc
        (List.map
           (fun (k, v) ->
             match J.to_int v with
             | Some i -> (k, i)
             | None -> raise (J.Error ("counter \"" ^ k ^ "\" is not an integer")))
           (J.get_obj "counters" j));
    dists = sort_assoc (List.map (fun (k, v) -> (k, dist_of_json v)) (J.get_obj "dists" j));
    hists = sort_assoc (List.map (fun (k, v) -> (k, hist_of_json v)) (J.get_obj "histograms" j));
    spans =
      sort_assoc
        (List.map (fun (k, v) -> (k, J.get_int "count" v)) (J.get_obj "spans" j)) }

(* Delta folding: counters, bucket counts and count/sum fields add;
   minima/maxima are cumulative in each line, so combining lines takes
   min/max. State lives in Hashtbls keyed by metric name; the final
   snapshot sorts, so hash order never shows (commutative folds). *)

let fold_deltas lines =
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let dists : (string, dist) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string, hist) Hashtbl.t = Hashtbl.create 16 in
  let spans : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl k n =
    Hashtbl.replace tbl k (n + Option.value (Hashtbl.find_opt tbl k) ~default:0)
  in
  let merge_buckets old add =
    (* both ascending by upper bound *)
    let rec go a b =
      match (a, b) with
      | [], rest | rest, [] -> rest
      | (le_a, ca) :: ta, (le_b, cb) :: tb ->
          if le_a = le_b then (le_a, ca + cb) :: go ta tb
          else if le_a < le_b then (le_a, ca) :: go ta b
          else (le_b, cb) :: go a tb
    in
    go old add
  in
  List.iter
    (fun line ->
      let j = J.parse line in
      (match J.to_string (J.get "schema" j) with
      | Some s when s = schema_delta -> ()
      | _ -> raise (J.Error ("expected schema " ^ schema_delta)));
      (match J.member "counters" j with
      | Some (J.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              match J.to_int v with
              | Some i -> bump counters k i
              | None -> raise (J.Error ("counter delta \"" ^ k ^ "\"")))
            kvs
      | _ -> ());
      (match J.member "dists" j with
      | Some (J.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              let d = dist_of_json v in
              match Hashtbl.find_opt dists k with
              | None -> Hashtbl.replace dists k d
              | Some o ->
                  Hashtbl.replace dists k
                    { d_count = o.d_count + d.d_count;
                      d_sum = o.d_sum + d.d_sum;
                      d_min = min o.d_min d.d_min;
                      d_max = max o.d_max d.d_max })
            kvs
      | _ -> ());
      (match J.member "histograms" j with
      | Some (J.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              let h = hist_of_json v in
              match Hashtbl.find_opt hists k with
              | None -> Hashtbl.replace hists k h
              | Some o ->
                  Hashtbl.replace hists k
                    { h_count = o.h_count + h.h_count;
                      h_sum = o.h_sum + h.h_sum;
                      h_min = min o.h_min h.h_min;
                      h_max = max o.h_max h.h_max;
                      h_buckets = merge_buckets o.h_buckets h.h_buckets })
            kvs
      | _ -> ());
      match J.member "spans" j with
      | Some (J.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              match J.to_int (J.get "count" v) with
              | Some i -> bump spans k i
              | None -> raise (J.Error ("span delta \"" ^ k ^ "\"")))
            kvs
      | _ -> ())
    lines;
  let to_list tbl =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  { counters = to_list counters; dists = to_list dists; hists = to_list hists;
    spans = to_list spans }

let of_string content =
  match J.parse content with
  | j -> (
      match J.to_string (J.get "schema" j) with
      | Some s when s = schema_full -> of_full_json j
      | Some s when s = schema_delta -> fold_deltas [ String.trim content ]
      | Some s -> raise (J.Error ("unknown snapshot schema \"" ^ s ^ "\""))
      | None -> raise (J.Error "\"schema\" is not a string"))
  | exception J.Error _ ->
      (* not one JSON document: treat as JSONL, one delta per line *)
      let lines =
        String.split_on_char '\n' content
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
      in
      if lines = [] then raise (J.Error "empty snapshot file")
      else fold_deltas lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | content -> (
      match of_string content with
      | snap -> Ok snap
      | exception J.Error msg -> Error (path ^ ": " ^ msg))

(* ------------------------------------------------------------------ *)
(* Quantiles from serialized buckets *)

let quantile h q =
  if h.h_count = 0 then 0
  else
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
    let rank = if rank < 1 then 1 else rank in
    let rec go acc = function
      | [] -> h.h_max
      | (le, count) :: rest ->
          let acc = acc + count in
          if acc >= rank then min le h.h_max else go acc rest
    in
    go 0 h.h_buckets

(* ------------------------------------------------------------------ *)
(* Flattening and diffing *)

let flatten snap =
  let acc = ref [] in
  let push k v = acc := (k, v) :: !acc in
  List.iter (fun (k, v) -> push k (float_of_int v)) snap.counters;
  List.iter
    (fun (k, d) ->
      push (k ^ ".count") (float_of_int d.d_count);
      if d.d_count > 0 then
        push (k ^ ".mean") (float_of_int d.d_sum /. float_of_int d.d_count))
    snap.dists;
  List.iter
    (fun (k, h) ->
      push (k ^ ".count") (float_of_int h.h_count);
      if h.h_count > 0 then begin
        push (k ^ ".p50") (float_of_int (quantile h 0.50));
        push (k ^ ".p99") (float_of_int (quantile h 0.99));
        push (k ^ ".max") (float_of_int h.h_max)
      end)
    snap.hists;
  List.iter (fun (k, v) -> push (k ^ ".count") (float_of_int v)) snap.spans;
  sort_assoc !acc

type change = {
  key : string;
  before : float option;
  after : float option;
}

let diff a b =
  (* merge two sorted key lists *)
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> []
    | (k, v) :: xs, [] -> { key = k; before = Some v; after = None } :: go xs []
    | [], (k, v) :: ys -> { key = k; before = None; after = Some v } :: go [] ys
    | (ka, va) :: xs', (kb, vb) :: ys' ->
        let c = String.compare ka kb in
        if c = 0 then
          { key = ka; before = Some va; after = Some vb } :: go xs' ys'
        else if c < 0 then
          { key = ka; before = Some va; after = None } :: go xs' ys
        else { key = kb; before = None; after = Some vb } :: go xs ys'
  in
  go (flatten a) (flatten b)

let pct_change c =
  match (c.before, c.after) with
  | Some b, Some a ->
      if Float.equal b 0. then
        if Float.equal a 0. then Some 0. else Some Float.infinity
      else Some ((a -. b) /. b *. 100.)
  | _ -> None

let regressions ?(watch = fun _ -> true) ~threshold_pct changes =
  List.filter
    (fun c ->
      watch c.key
      &&
      match pct_change c with
      | Some pct -> Float.compare pct threshold_pct > 0
      | None -> false)
    changes

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Per-tenant SLO metrics as recorded by the admission daemon under
   profiling: [server.tenant.<t>.latency_ns] histograms and
   [server.tenant.<t>.errors] counters. *)
let tenant_prefix = "server.tenant."
let latency_suffix = ".latency_ns"

let slo_offenders ?(k = 5) snap =
  let errors t =
    match List.assoc_opt (tenant_prefix ^ t ^ ".errors") snap.counters with
    | Some n -> n
    | None -> 0
  in
  let scored =
    List.filter_map
      (fun (key, h) ->
        if
          String.starts_with ~prefix:tenant_prefix key
          && String.ends_with ~suffix:latency_suffix key
        then begin
          let t =
            String.sub key
              (String.length tenant_prefix)
              (String.length key - String.length tenant_prefix
              - String.length latency_suffix)
          in
          Some (t, h, errors t)
        end
        else None)
      snap.hists
  in
  let sorted =
    List.sort
      (fun (t1, h1, _) (t2, h2, _) ->
        match Int.compare (quantile h2 0.99) (quantile h1 0.99) with
        | 0 -> String.compare t1 t2
        | c -> c)
      scored
  in
  List.filteri (fun i _ -> i < k) sorted

let pp_summary ppf snap =
  let line = String.make 70 '-' in
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "metrics snapshot (%s)@." schema_full;
  Format.fprintf ppf "%s@." line;
  if snap.counters <> [] then begin
    Format.fprintf ppf "%-44s %12s@." "counter" "total";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %-42s %12d@." k v)
      snap.counters
  end;
  if snap.dists <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %7s %7s@." "distribution" "count"
      "mean" "min" "max";
    List.iter
      (fun (k, d) ->
        Format.fprintf ppf "  %-34s %8d %10.2f %7d %7d@." k d.d_count
          (float_of_int d.d_sum /. float_of_int (max 1 d.d_count))
          d.d_min d.d_max)
      snap.dists
  end;
  if snap.hists <> [] then begin
    Format.fprintf ppf "%-36s %8s %8s %8s %8s %8s@." "histogram" "count" "p50"
      "p95" "p99" "max";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "  %-34s %8d %8d %8d %8d %8d@." k h.h_count
          (quantile h 0.50) (quantile h 0.95) (quantile h 0.99) h.h_max)
      snap.hists
  end;
  if snap.spans <> [] then begin
    Format.fprintf ppf "%-44s %12s@." "span" "count";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %-42s %12d@." k v)
      snap.spans
  end;
  (match slo_offenders snap with
  | [] -> ()
  | offenders ->
      Format.fprintf ppf "%-28s %8s %8s %8s %8s %6s@." "tenant (worst p99)"
        "count" "p50" "p99" "max" "errors";
      List.iter
        (fun (t, h, errs) ->
          Format.fprintf ppf "  %-26s %8d %8d %8d %8d %6d@." t h.h_count
            (quantile h 0.50) (quantile h 0.99) h.h_max errs)
        offenders);
  if snap.counters = [] && snap.dists = [] && snap.hists = [] && snap.spans = []
  then Format.fprintf ppf "(empty snapshot)@.";
  Format.fprintf ppf "%s@." line

let pp_float ppf v =
  (* integers (the common case: counters, quantiles) print bare *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%d" (int_of_float v)
  else Format.fprintf ppf "%.2f" v

let pp_opt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> pp_float ppf v

let pp_diff ?(only_changed = true) ppf changes =
  let changed c =
    match (c.before, c.after) with
    | Some b, Some a -> not (Float.equal b a)
    | None, None -> false
    | _ -> true
  in
  let rows = if only_changed then List.filter changed changes else changes in
  Format.fprintf ppf "%-44s %12s %12s %12s %9s@." "metric" "before" "after"
    "delta" "pct";
  if rows = [] then Format.fprintf ppf "  (no differences)@."
  else
    List.iter
      (fun c ->
        let delta =
          match (c.before, c.after) with
          | Some b, Some a -> Some (a -. b)
          | _ -> None
        in
        let pct =
          match pct_change c with
          | None -> "-"
          | Some p when Float.is_finite p -> Format.asprintf "%+.1f%%" p
          | Some p -> if p > 0. then "+inf" else "-inf"
        in
        let s v = Format.asprintf "%a" pp_opt v in
        Format.fprintf ppf "  %-42s %12s %12s %12s %9s@." c.key (s c.before)
          (s c.after) (s delta) pct)
      rows
