(** Offline consumer of metrics snapshots: load, summarize, diff.

    This is the library half of the [hydra_c obs-report] CLI
    subcommand (bin/hydra_experiments.ml): it reads the artifacts the
    observability layer writes — a full [hydra_c.metrics/1] snapshot
    (one JSON object, [Hydra_obs.Snapshot.write] / [--metrics-out]) or
    a [hydra_c.metrics_delta/1] JSONL time series
    ([Hydra_obs.Snapshot.Stream] / [--metrics-stream]) — normalizes
    either into the same {!snapshot} value (a JSONL stream is folded
    by summing its deltas, which round-trips to the full snapshot —
    tested in test/test_obs_report.ml), and renders deterministic
    summary and diff tables plus a threshold verdict for CI regression
    gates. Everything here is pure: rendering goes to a caller-supplied
    formatter and file access is isolated in {!load}. Schema details in
    doc/OBSERVABILITY.md. *)

type dist = { d_count : int; d_sum : int; d_min : int; d_max : int }

type hist = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
      (** (upper bound, count) of occupied buckets, ascending *)
}

type snapshot = {
  counters : (string * int) list;
  dists : (string * dist) list;
  hists : (string * hist) list;
  spans : (string * int) list;  (** span counts *)
}
(** A normalized snapshot; every association list is sorted by name. *)

val of_string : string -> snapshot
(** Parse the contents of a snapshot artifact. A single JSON object
    with schema [hydra_c.metrics/1] loads directly; otherwise every
    non-empty line must be a [hydra_c.metrics_delta/1] object and the
    deltas are folded in order (counter/bucket/count/sum deltas summed,
    cumulative minima/maxima combined). @raise Obs_json.Error on
    malformed input or an unknown schema. *)

val load : string -> (snapshot, string) result
(** {!of_string} of a file's contents; I/O and parse errors are
    returned as [Error message] (prefixed with the path). *)

val quantile : hist -> float -> int
(** Rank-select quantile over the serialized buckets, clamped to the
    recorded maximum — the same rule as
    {!Hydra_obs.Histogram.quantile}, so a quantile recomputed from a
    loaded snapshot equals the one the writer stored. [0] on an empty
    histogram. *)

(** {1 Flattened metrics}

    Diffing works on one scalar per key: counters flatten to
    [<name>], distributions to [<name>.count]/[<name>.mean], histograms
    to [<name>.count]/[<name>.p50]/[<name>.p99]/[<name>.max], spans to
    [<name>.count]. *)

type change = {
  key : string;
  before : float option;  (** [None] = key absent from the first file *)
  after : float option;
}

val flatten : snapshot -> (string * float) list
(** The scalar view described above, sorted by key. *)

val diff : snapshot -> snapshot -> change list
(** One {!change} per key present in either snapshot, sorted. *)

val pct_change : change -> float option
(** Relative change in percent, when both sides are present:
    [(after - before) / before * 100.]; [infinity] when [before = 0.]
    and [after > 0.]; [None] when either side is missing. *)

val regressions :
  ?watch:(string -> bool) -> threshold_pct:float -> change list -> change list
(** Changes whose {!pct_change} exceeds [threshold_pct] (an increase —
    more work, higher latency), restricted to keys satisfying [watch]
    (default: every key). The verdict the CLI turns into its exit
    code. *)

val slo_offenders : ?k:int -> snapshot -> (string * hist * int) list
(** The [k] (default 5) worst tenants by latency p99, from the
    admission daemon's per-tenant SLO metrics
    ([server.tenant.<t>.latency_ns] histograms and
    [server.tenant.<t>.errors] counters — recorded only under
    profiling, doc/SERVER.md): [(tenant, latency histogram, error
    count)], p99-descending, ties broken by tenant name. Empty when
    the snapshot has no tenant histograms. *)

(** {1 Rendering}

    Both renderers are deterministic: sorted keys, fixed column
    layout, no wall-clock content. *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Summary table of one snapshot (counters, distributions, histogram
    quantiles recomputed via {!quantile}, span counts, and — when the
    snapshot carries per-tenant SLO metrics — a {!slo_offenders}
    table). *)

val pp_diff : ?only_changed:bool -> Format.formatter -> change list -> unit
(** Diff table: key, before, after, delta, percent. [only_changed]
    (default [true]) drops rows whose value is unchanged. *)
