type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let fail_at pos msg = raise (Error (Printf.sprintf "%s at byte %d" msg pos))

(* UTF-8 encode one code point (the result of a \uXXXX escape; no
   surrogate-pair recombination — snapshot keys are metric names, which
   are ASCII). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = fail_at !pos msg in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some 'u' ->
              advance ();
              let cp = ref 0 in
              for _ = 1 to 4 do
                (match peek () with
                | Some c -> cp := (!cp * 16) + hex_digit c
                | None -> fail "truncated \\u escape");
                advance ()
              done;
              add_utf8 buf !cp;
              go ()
          | Some c -> fail (Printf.sprintf "bad escape '\\%c'" c)
          | None -> fail "truncated escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail_at start "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}' in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']' in array"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content after JSON value";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let get k j =
  match member k j with
  | Some v -> v
  | None -> raise (Error ("missing member \"" ^ k ^ "\""))

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f ->
      let i = int_of_float f in
      (* reject non-representable magnitudes rather than wrapping *)
      if Float.is_finite f && Float.abs f <= 4.611686018427387904e18 then Some i
      else None
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let get_int k j =
  match to_int (get k j) with
  | Some i -> i
  | None -> raise (Error ("member \"" ^ k ^ "\" is not an integer"))

let get_obj k j =
  match get k j with
  | Obj kvs -> kvs
  | _ -> raise (Error ("member \"" ^ k ^ "\" is not an object"))
