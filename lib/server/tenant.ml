module Task = Rtsched.Task
module Partition = Rtsched.Partition
module Rta = Rtsched.Rta_uniproc
module Analysis = Hydra.Analysis
module Period_selection = Hydra.Period_selection

type 'a admission = Admitted of 'a | Rejected of string | Invalid of string

(* One resident RT task: its wire spec plus the core it was admitted
   to. Placements are frozen at admission; only [Set_cores]/[Init]
   repartition. *)
type rt_resident = { spec : Protocol.rt_spec; core : int }

type t = {
  name : string;
  cache_capacity : int;
  mutable cores : int;
  mutable rt : rt_resident list;  (* arrival order; rt_id = position *)
  mutable sec : Protocol.sec_spec list;  (* arrival order; sec_id = prio = position *)
  mutable sys : Analysis.system;
  mutable warm : Analysis.time array;  (* all-bounds WCRTs by sec_id *)
  mutable warm_ok : bool;  (* warm entries are sound lower bounds *)
  mutable last : Period_selection.result option;
  mutable dirty : bool;
  mutable selects : int;
  mutable warm_selects : int;
}

let name t = t.name

(* ------------------------------------------------------------------ *)
(* Model building *)

(* RT tasks from the resident list: id = arrival position, priorities
   rebuilt rate-monotonically over the whole set (renumbering
   preserves relative order within every core, so unchanged cores stay
   TDA-feasible and their workload columns are untouched). *)
let rt_tasks residents =
  let plain =
    List.mapi
      (fun i (r : rt_resident) ->
        Task.make_rt ~name:r.spec.Protocol.r_name ~id:i ~prio:i
          ~wcet:r.spec.Protocol.r_wcet ~period:r.spec.Protocol.r_period ())
      residents
  in
  let ranked = Task.assign_rate_monotonic plain in
  match ranked with
  | [] -> [||]
  | hd :: _ ->
      let arr = Array.make (List.length ranked) hd in
      List.iter (fun (tk : Task.rt_task) -> arr.(tk.rt_id) <- tk) ranked;
      arr

let sec_tasks specs =
  Array.of_list
    (List.mapi
       (fun i (s : Protocol.sec_spec) ->
         Task.make_sec ~name:s.Protocol.s_name ~id:i ~prio:i
           ~wcet:s.Protocol.s_wcet ~period_max:s.Protocol.s_period_max ())
       specs)

let by_prio = List.sort (fun a b -> compare a.Task.rt_prio b.Task.rt_prio)

(* Per-core RT task lists (priority-sorted) for frozen placements. *)
let build_cores tasks residents n_cores =
  let cores = Array.make n_cores [] in
  List.iteri
    (fun i (r : rt_resident) -> cores.(r.core) <- tasks.(i) :: cores.(r.core))
    residents;
  Array.map by_prio cores

let core_utilization core =
  List.fold_left (fun acc tk -> acc +. Task.rt_utilization tk) 0. core

let taskset t =
  Task.make_taskset ~n_cores:t.cores
    ~rt:(Array.to_list (rt_tasks t.rt))
    ~sec:(Array.to_list (sec_tasks t.sec))

let assignment t = Array.of_list (List.map (fun r -> r.core) t.rt)

let snapshot t = (taskset t, assignment t)

(* ------------------------------------------------------------------ *)
(* Admission edits *)

let dup_rt t n = List.exists (fun r -> r.spec.Protocol.r_name = n) t.rt
let dup_sec t n = List.exists (fun (s : Protocol.sec_spec) -> s.s_name = n) t.sec

let guard f = try f () with Task.Invalid_task m -> Invalid m

(* Full (re)build from scratch: partition everything, fresh system,
   discard warm state. Shared by [create] and [set_cores]. *)
let find_dup names =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc n ->
      match acc with
      | Some _ -> acc
      | None ->
          if Hashtbl.mem seen n then Some n
          else begin
            Hashtbl.add seen n ();
            None
          end)
    None names

let rebuild ~name ~cache_capacity ~cores ~rt_specs ~sec_specs ~selects
    ~warm_selects =
  guard (fun () ->
      (match
         find_dup (List.map (fun (s : Protocol.rt_spec) -> s.r_name) rt_specs)
       with
      | Some n -> raise (Task.Invalid_task (Printf.sprintf "duplicate RT task %S" n))
      | None -> ());
      (match
         find_dup (List.map (fun (s : Protocol.sec_spec) -> s.s_name) sec_specs)
       with
      | Some n ->
          raise
            (Task.Invalid_task (Printf.sprintf "duplicate security task %S" n))
      | None -> ());
      let residents =
        List.map (fun spec -> { spec; core = -1 }) rt_specs
      in
      let ts =
        Task.make_taskset ~n_cores:cores
          ~rt:(Array.to_list (rt_tasks residents))
          ~sec:(Array.to_list (sec_tasks sec_specs))
      in
      match Partition.partition_rt ts with
      | None -> Rejected "RT taskset is not partitionable"
      | Some asg ->
          let residents =
            List.mapi (fun i spec -> { spec; core = asg.(i) }) rt_specs
          in
          let sys = Analysis.make_system ts ~assignment:asg in
          Analysis.set_cache_capacity sys cache_capacity;
          Admitted
            { name; cache_capacity; cores; rt = residents; sec = sec_specs;
              sys; warm = [||]; warm_ok = false; last = None; dirty = true;
              selects; warm_selects })

let create ~name ~cache_capacity ~cores ~rt ~sec =
  rebuild ~name ~cache_capacity ~cores ~rt_specs:rt ~sec_specs:sec ~selects:0
    ~warm_selects:0

let set_cores t cores =
  match
    rebuild ~name:t.name ~cache_capacity:t.cache_capacity ~cores
      ~rt_specs:(List.map (fun r -> r.spec) t.rt)
      ~sec_specs:t.sec ~selects:t.selects ~warm_selects:t.warm_selects
  with
  | Admitted fresh ->
      t.cores <- fresh.cores;
      t.rt <- fresh.rt;
      t.sys <- fresh.sys;
      t.warm <- [||];
      t.warm_ok <- false;
      t.dirty <- true;
      Admitted ()
  | Rejected r -> Rejected r
  | Invalid m -> Invalid m

let rt_arrive t spec =
  if dup_rt t spec.Protocol.r_name then
    Invalid (Printf.sprintf "duplicate RT task %S" spec.Protocol.r_name)
  else
    guard (fun () ->
        let n = List.length t.rt in
        let residents = t.rt @ [ { spec; core = -1 } ] in
        let tasks = rt_tasks residents in
        let incoming = tasks.(n) in
        (* per-core lists of the resident tasks under the new global RM
           numbering (the incoming task is not placed yet) *)
        let cores = build_cores tasks t.rt t.cores in
        (* best-fit admission: among TDA-feasible cores, the one with
           the highest current utilization; strict [>] keeps the lowest
           index on ties — mirrors Partition.choose_core *)
        let best = ref (-1) in
        let best_util = ref neg_infinity in
        for m = 0 to t.cores - 1 do
          if Rta.core_rt_schedulable (by_prio (incoming :: cores.(m))) then begin
            let u = core_utilization cores.(m) in
            if u > !best_util then begin
              best := m;
              best_util := u
            end
          end
        done;
        if !best < 0 then
          Rejected
            (Printf.sprintf "no feasible core for RT task %S"
               spec.Protocol.r_name)
        else begin
          let m = !best in
          t.rt <- t.rt @ [ { spec; core = m } ];
          let new_cores = build_cores tasks t.rt t.cores in
          let changed = Array.make t.cores false in
          changed.(m) <- true;
          t.sys <- Analysis.refresh_rt_cores t.sys new_cores ~changed;
          (* interference only grew: the warm floors stay sound *)
          t.dirty <- true;
          Admitted ()
        end)

let rt_leave t name =
  match List.find_opt (fun r -> r.spec.Protocol.r_name = name) t.rt with
  | None -> Invalid (Printf.sprintf "unknown RT task %S" name)
  | Some departed ->
      let m = departed.core in
      t.rt <- List.filter (fun r -> r.spec.Protocol.r_name <> name) t.rt;
      let tasks = rt_tasks t.rt in
      let new_cores = build_cores tasks t.rt t.cores in
      let changed = Array.make t.cores false in
      changed.(m) <- true;
      t.sys <- Analysis.refresh_rt_cores t.sys new_cores ~changed;
      (* interference shrank: previous all-bounds responses may now
         overshoot the true fixed points — drop the warm floors *)
      t.warm_ok <- false;
      t.dirty <- true;
      Admitted ()

let sec_arrive t spec =
  if dup_sec t spec.Protocol.s_name then
    Invalid (Printf.sprintf "duplicate security task %S" spec.Protocol.s_name)
  else
    guard (fun () ->
        (* validate eagerly so a bad spec never enters the state *)
        ignore
          (Task.make_sec ~name:spec.Protocol.s_name ~id:0 ~prio:0
             ~wcet:spec.Protocol.s_wcet
             ~period_max:spec.Protocol.s_period_max ());
        t.sec <- t.sec @ [ spec ];
        (* the newcomer gets the lowest security priority, so no
           existing task's hp set changes: warm floors stay sound, the
           new slot starts at 0 (no floor) *)
        if t.warm_ok then t.warm <- Array.append t.warm [| 0 |];
        t.dirty <- true;
        Admitted ())

let sec_leave t name =
  if not (List.exists (fun (s : Protocol.sec_spec) -> s.s_name = name) t.sec)
  then Invalid (Printf.sprintf "unknown security task %S" name)
  else begin
    t.sec <-
      List.filter (fun (s : Protocol.sec_spec) -> s.s_name <> name) t.sec;
    (* lower-priority tasks lose an hp interferer: responses shrink,
       old floors may overshoot — drop them *)
    t.warm_ok <- false;
    t.dirty <- true;
    Admitted ()
  end

let touch t = t.dirty <- true

(* ------------------------------------------------------------------ *)
(* Materialization *)

let materialize ?obs ?ctx ~incremental t =
  (match t.last with
  | Some r when (not t.dirty) && incremental -> r
  | _ ->
      (* incremental: clean tenants answer from [t.last] above. Cold is
         the stateless per-request baseline — no resident cache at all,
         so even a clean tenant re-selects from scratch. *)
      let secs = sec_tasks t.sec in
      let n_sec = Array.length secs in
      let sys =
        if incremental then t.sys
        else begin
          (* cold baseline: fresh system, empty cache, no warm floors *)
          let ts, asg = snapshot t in
          let sys = Analysis.make_system ts ~assignment:asg in
          Analysis.set_cache_capacity sys t.cache_capacity;
          sys
        end
      in
      let bounds = Array.make n_sec 0 in
      let warm0 =
        if incremental && t.warm_ok && Array.length t.warm = n_sec then
          Some t.warm
        else None
      in
      (* Previous periods as search hints: any value is sound (hints
         only steer the probe order of the exact threshold search), so
         unlike the warm floors they survive structural deltas. Stale
         sec_ids after a [sec_leave] renumbering at worst waste
         probes. *)
      let hints =
        match t.last with
        | Some (Period_selection.Schedulable assignments) when incremental ->
            (* sized to the previous ids, which may exceed [n_sec]
               right after a [sec_leave] renumbering *)
            let m =
              List.fold_left
                (fun acc (a : Period_selection.assignment) ->
                  max acc (a.sec.Task.sec_id + 1))
                n_sec assignments
            in
            Some (Period_selection.period_vector assignments ~n_sec:m)
        | _ -> None
      in
      (* On a traced request, the selection gets its own child span —
         the dominant cost of the pipeline, attributed to the worker
         domain that ran it. *)
      let sel_ctx = Option.map Hydra_obs.Trace_ctx.child ctx in
      let result =
        Hydra_obs.trace_span obs sel_ctx "server.select" (fun () ->
            Period_selection.select ~fast:true ?warm0 ?hints
              ~bounds_out:bounds ?obs sys secs)
      in
      t.selects <- t.selects + 1;
      Hydra_obs.incr obs "server.select";
      if warm0 <> None then begin
        t.warm_selects <- t.warm_selects + 1;
        Hydra_obs.incr obs "server.select.warm"
      end;
      (match result with
      | Schedulable _ when incremental ->
          t.warm <- bounds;
          t.warm_ok <- true
      | Schedulable _ | Unschedulable ->
          (* unschedulable: the all-bounds pass did not complete, so
             [bounds] is not a full vector — keep the previous floors *)
          ());
      t.last <- Some result;
      t.dirty <- false;
      result)

let stats t =
  let cs = Analysis.cache_stats t.sys in
  { Protocol.st_cores = t.cores; st_rt = List.length t.rt;
    st_sec = List.length t.sec; st_selects = t.selects;
    st_warm_selects = t.warm_selects;
    st_cache_entries = cs.Analysis.cs_entries;
    st_cache_capacity = cs.Analysis.cs_capacity;
    st_cache_hits = cs.Analysis.cs_hits; st_cache_misses = cs.Analysis.cs_misses;
    st_cache_evictions = cs.Analysis.cs_evictions;
    st_cache_refreshes = cs.Analysis.cs_refreshes }

let selects t = t.selects
let warm_selects t = t.warm_selects
