(** Unix-domain-socket front end of the admission-control daemon
    (doc/SERVER.md; exposed as [hydra_c serve]).

    Serves one client connection at a time (further clients queue in
    the listen backlog) — the parallelism that matters is tenant
    sharding inside {!Engine}. Per connection, frames are read in
    batches: block for one request, then drain whatever is already
    deliverable (up to [max_batch] frames) so concurrent updates from
    a pipelining client coalesce into one {!Engine.exec_batch} call; a
    lockstep client always gets one-request batches, which is what
    makes the serve-smoke fixture batching-invariant.

    [Shutdown], [Obs_snapshot] and [Obs_stream] requests are handled
    here, not in the engine. The obs ops answer from the live registry
    and deliberately leave {e no} footprint in it: they skip the
    engine (so [server.batches]/[server.requests]/[server.req.*] do
    not move) and the [server.connections] counter is lazy — bumped at
    a connection's first engine-bound request — so a scrape-only
    connection is invisible and a live [obs-report --connect] summary
    matches the shutdown [--metrics-out] snapshot exactly
    (doc/OBSERVABILITY.md, gated in CI). Malformed frames produce an
    [error] response with [id = -1] so pairing survives.

    {b Tracing.} With [trace_sample_rate > 0] (and a registry), the
    daemon mints one {!Hydra_obs.Trace_ctx} per sampled request at
    accept: the whole request becomes a ["server.request"] root span
    timed from frame arrival to reply, decoding a ["server.decode"]
    child, and the context rides through {!Engine.exec_batch} into
    cross-domain flow arrows and ["server.apply"]/["server.select"]
    worker spans. At the default rate 0 nothing is recorded and
    [--metrics-out] stays byte-identical.

    {b Flight recorder.} Always on: every batch drops compact
    Accept/Decode/Reply (and engine-side Shard/Coalesce/Select)
    events into a fixed-size lock-free ring ({!Hydra_obs.Flight}).
    The ring is dumped as JSONL — to [flight_path], default
    [socket_path ^ ".flight.jsonl"] — on SIGUSR1, on an uncaught
    crash, on a batch slower than [slow_request_ms], and at shutdown
    when [flight_path] was given explicitly. Never appears in metrics
    snapshots.

    Request timing uses the monotonic {!Hydra_obs.now_ns} clock; the
    [server.latency] histogram, the per-tenant
    [server.tenant.<t>.latency_ns]/[.errors] SLO metrics and the
    per-shard spans record only when profiling is enabled on the
    registry, keeping snapshots byte-identical across [--jobs].
    Operator messages (slow batches, SLO breaches, dump notices,
    connection errors) go through the rate-limited structured
    {!Hydra_obs.Log} — the only stderr channel hydra_lint permits
    under [lib/server]. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains for tenant sharding (default 1) *)
  incremental : bool;  (** warm path on; [false] = cold baseline *)
  cache_capacity : int;  (** per-tenant workload-cache bound; 0 = unbounded *)
  max_batch : int;  (** frames drained per batch (default 64) *)
  trace_sample_rate : float;
      (** fraction of requests traced (default 0.0 = off; 1.0 = all) *)
  slow_request_ms : int;
      (** batches slower than this dump the flight ring and log a
          warning; 0 (default) disables *)
  flight_path : string option;
      (** flight-dump destination; [None] (default) derives
          [socket_path ^ ".flight.jsonl"] and dumps only on
          signal/crash/slow, [Some p] also dumps at shutdown *)
}

val default_config : socket_path:string -> config

val serve :
  ?obs:Hydra_obs.t -> ?config:config -> ?on_ready:(unit -> unit) ->
  unit -> unit
(** Bind the socket (unlinking any stale file), call [on_ready], and
    accept until a [Shutdown] request arrives. Always unlinks the
    socket, restores the SIGUSR1 handler and stops the engine on the
    way out. *)
