(** Unix-domain-socket front end of the admission-control daemon
    (doc/SERVER.md; exposed as [hydra_c serve]).

    Serves one client connection at a time (further clients queue in
    the listen backlog) — the parallelism that matters is tenant
    sharding inside {!Engine}. Per connection, frames are read in
    batches: block for one request, then drain whatever is already
    deliverable (up to [max_batch] frames) so concurrent updates from
    a pipelining client coalesce into one {!Engine.exec_batch} call; a
    lockstep client always gets one-request batches, which is what
    makes the serve-smoke fixture batching-invariant.

    [Shutdown] requests are handled here, not in the engine: the
    daemon acknowledges, closes the connection, and stops. Malformed
    frames produce an [error] response with [id = -1] so pairing
    survives. Request timing uses the monotonic
    {!Hydra_obs.now_ns} clock; the [server.latency] histogram (and the
    per-shard spans below it) record only when profiling is enabled on
    the registry, keeping snapshots byte-identical across [--jobs]. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains for tenant sharding (default 1) *)
  incremental : bool;  (** warm path on; [false] = cold baseline *)
  cache_capacity : int;  (** per-tenant workload-cache bound; 0 = unbounded *)
  max_batch : int;  (** frames drained per batch (default 64) *)
}

val default_config : socket_path:string -> config

val serve :
  ?obs:Hydra_obs.t -> ?config:config -> ?on_ready:(unit -> unit) ->
  unit -> unit
(** Bind the socket (unlinking any stale file), call [on_ready], and
    accept until a [Shutdown] request arrives. Always unlinks the
    socket and stops the engine on the way out. *)
