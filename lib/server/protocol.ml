exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let version = "hydra_c.server/1"
let max_frame = 16 * 1024 * 1024

type rt_spec = { r_name : string; r_wcet : int; r_period : int }
type sec_spec = { s_name : string; s_wcet : int; s_period_max : int }

type op =
  | Init of { cores : int; rt : rt_spec list; sec : sec_spec list }
  | Rt_arrive of rt_spec
  | Rt_leave of string
  | Sec_arrive of sec_spec
  | Sec_leave of string
  | Set_cores of int
  | Reselect
  | Query
  | Stats
  | Remove
  | Shutdown
  | Obs_snapshot
  | Obs_stream

type request = { q_id : int; q_tenant : string; q_op : op }

type assignment = { a_name : string; a_period : int; a_resp : int }

type stats = {
  st_cores : int;
  st_rt : int;
  st_sec : int;
  st_selects : int;
  st_warm_selects : int;
  st_cache_entries : int;
  st_cache_capacity : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_evictions : int;
  st_cache_refreshes : int;
}

type status = Ok | Unschedulable | Rejected | Failed

type body =
  | Periods of assignment list
  | Tenant_stats of stats
  | Metrics of string
      (* one hydra_c.metrics/1 snapshot (obs_snapshot) or one
         hydra_c.metrics_delta/1 line (obs_stream), verbatim *)
  | No_body

type response = {
  p_id : int;
  p_tenant : string;
  p_status : status;
  p_reason : string option;
  p_body : body;
}

let ok ~id ~tenant body =
  { p_id = id; p_tenant = tenant; p_status = Ok; p_reason = None;
    p_body = body }

let unschedulable ~id ~tenant =
  { p_id = id; p_tenant = tenant; p_status = Unschedulable; p_reason = None;
    p_body = No_body }

let rejected ~id ~tenant reason =
  { p_id = id; p_tenant = tenant; p_status = Rejected; p_reason = Some reason;
    p_body = No_body }

let error ~id ~tenant reason =
  { p_id = id; p_tenant = tenant; p_status = Failed; p_reason = Some reason;
    p_body = No_body }

(* ------------------------------------------------------------------ *)
(* JSON emission. Member order is fixed here, and every payload value
   is an integer or a string, so encoded frames are byte-stable — the
   committed smoke fixture and the cross-[--jobs] identity checks rely
   on this. *)

let buf_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_kv_str b k v =
  buf_escaped b k;
  Buffer.add_char b ':';
  buf_escaped b v

let buf_kv_int b k v =
  buf_escaped b k;
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int v)

let buf_rt_spec b (t : rt_spec) =
  Buffer.add_char b '{';
  buf_kv_str b "name" t.r_name;
  Buffer.add_char b ',';
  buf_kv_int b "wcet" t.r_wcet;
  Buffer.add_char b ',';
  buf_kv_int b "period" t.r_period;
  Buffer.add_char b '}'

let buf_sec_spec b (t : sec_spec) =
  Buffer.add_char b '{';
  buf_kv_str b "name" t.s_name;
  Buffer.add_char b ',';
  buf_kv_int b "wcet" t.s_wcet;
  Buffer.add_char b ',';
  buf_kv_int b "period_max" t.s_period_max;
  Buffer.add_char b '}'

let buf_list b f xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f b x)
    xs;
  Buffer.add_char b ']'

let op_name = function
  | Init _ -> "init"
  | Rt_arrive _ -> "rt_arrive"
  | Rt_leave _ -> "rt_leave"
  | Sec_arrive _ -> "sec_arrive"
  | Sec_leave _ -> "sec_leave"
  | Set_cores _ -> "set_cores"
  | Reselect -> "reselect"
  | Query -> "query"
  | Stats -> "stats"
  | Remove -> "remove"
  | Shutdown -> "shutdown"
  | Obs_snapshot -> "obs_snapshot"
  | Obs_stream -> "obs_stream"

let encode_request (q : request) =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  buf_kv_str b "v" version;
  Buffer.add_char b ',';
  buf_kv_int b "id" q.q_id;
  Buffer.add_char b ',';
  buf_kv_str b "tenant" q.q_tenant;
  Buffer.add_char b ',';
  buf_kv_str b "op" (op_name q.q_op);
  (match q.q_op with
  | Init { cores; rt; sec } ->
      Buffer.add_char b ',';
      buf_kv_int b "cores" cores;
      Buffer.add_string b ",\"rt\":";
      buf_list b buf_rt_spec rt;
      Buffer.add_string b ",\"sec\":";
      buf_list b buf_sec_spec sec
  | Rt_arrive t ->
      Buffer.add_string b ",\"task\":";
      buf_rt_spec b t
  | Sec_arrive t ->
      Buffer.add_string b ",\"task\":";
      buf_sec_spec b t
  | Rt_leave name | Sec_leave name ->
      Buffer.add_char b ',';
      buf_kv_str b "name" name
  | Set_cores cores ->
      Buffer.add_char b ',';
      buf_kv_int b "cores" cores
  | Reselect | Query | Stats | Remove | Shutdown | Obs_snapshot
  | Obs_stream -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let status_name = function
  | Ok -> "ok"
  | Unschedulable -> "unschedulable"
  | Rejected -> "rejected"
  | Failed -> "error"

let encode_response (p : response) =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  buf_kv_str b "v" version;
  Buffer.add_char b ',';
  buf_kv_int b "id" p.p_id;
  Buffer.add_char b ',';
  buf_kv_str b "tenant" p.p_tenant;
  Buffer.add_char b ',';
  buf_kv_str b "status" (status_name p.p_status);
  (match p.p_reason with
  | None -> ()
  | Some r ->
      Buffer.add_char b ',';
      buf_kv_str b "reason" r);
  (match p.p_body with
  | No_body -> ()
  | Periods assignments ->
      Buffer.add_string b ",\"assignments\":";
      buf_list b
        (fun b a ->
          Buffer.add_char b '{';
          buf_kv_str b "name" a.a_name;
          Buffer.add_char b ',';
          buf_kv_int b "period" a.a_period;
          Buffer.add_char b ',';
          buf_kv_int b "resp" a.a_resp;
          Buffer.add_char b '}')
        assignments
  | Tenant_stats s ->
      Buffer.add_string b ",\"stats\":{";
      buf_kv_int b "cores" s.st_cores;
      Buffer.add_char b ',';
      buf_kv_int b "rt" s.st_rt;
      Buffer.add_char b ',';
      buf_kv_int b "sec" s.st_sec;
      Buffer.add_char b ',';
      buf_kv_int b "selects" s.st_selects;
      Buffer.add_char b ',';
      buf_kv_int b "warm_selects" s.st_warm_selects;
      Buffer.add_char b ',';
      buf_kv_int b "cache_entries" s.st_cache_entries;
      Buffer.add_char b ',';
      buf_kv_int b "cache_capacity" s.st_cache_capacity;
      Buffer.add_char b ',';
      buf_kv_int b "cache_hits" s.st_cache_hits;
      Buffer.add_char b ',';
      buf_kv_int b "cache_misses" s.st_cache_misses;
      Buffer.add_char b ',';
      buf_kv_int b "cache_evictions" s.st_cache_evictions;
      Buffer.add_char b ',';
      buf_kv_int b "cache_refreshes" s.st_cache_refreshes;
      Buffer.add_char b '}'
  | Metrics payload ->
      Buffer.add_char b ',';
      buf_kv_str b "metrics" payload);
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON decoding, on top of the observability layer's strict reader. *)

module J = Hydra_obs.Json

let get_int j k =
  match J.member k j with
  | Some v -> (
      match J.to_int v with
      | Some n -> n
      | None -> fail "member %S is not an integer" k)
  | None -> fail "missing member %S" k

let get_str j k =
  match J.member k j with
  | Some v -> (
      match J.to_string v with
      | Some s -> s
      | None -> fail "member %S is not a string" k)
  | None -> fail "missing member %S" k

let get_list j k =
  match J.member k j with
  | Some (J.Arr xs) -> xs
  | Some _ -> fail "member %S is not an array" k
  | None -> fail "missing member %S" k

let rt_spec_of_json j =
  { r_name = get_str j "name"; r_wcet = get_int j "wcet";
    r_period = get_int j "period" }

let sec_spec_of_json j =
  { s_name = get_str j "name"; s_wcet = get_int j "wcet";
    s_period_max = get_int j "period_max" }

let get_task j = match J.member "task" j with
  | Some t -> t
  | None -> fail "missing member %S" "task"

let parse_json s =
  match J.parse s with
  | j -> j
  | exception J.Error e -> fail "malformed JSON: %s" e

let check_version j =
  let v = get_str j "v" in
  if v <> version then fail "unsupported schema %S (want %S)" v version

let decode_request s =
  let j = parse_json s in
  check_version j;
  let q_id = get_int j "id" in
  let q_tenant = get_str j "tenant" in
  let q_op =
    match get_str j "op" with
    | "init" ->
        Init
          { cores = get_int j "cores";
            rt = List.map rt_spec_of_json (get_list j "rt");
            sec = List.map sec_spec_of_json (get_list j "sec") }
    | "rt_arrive" -> Rt_arrive (rt_spec_of_json (get_task j))
    | "rt_leave" -> Rt_leave (get_str j "name")
    | "sec_arrive" -> Sec_arrive (sec_spec_of_json (get_task j))
    | "sec_leave" -> Sec_leave (get_str j "name")
    | "set_cores" -> Set_cores (get_int j "cores")
    | "reselect" -> Reselect
    | "query" -> Query
    | "stats" -> Stats
    | "remove" -> Remove
    | "shutdown" -> Shutdown
    | "obs_snapshot" -> Obs_snapshot
    | "obs_stream" -> Obs_stream
    | op -> fail "unknown op %S" op
  in
  { q_id; q_tenant; q_op }

let decode_response s =
  let j = parse_json s in
  check_version j;
  let p_id = get_int j "id" in
  let p_tenant = get_str j "tenant" in
  let p_status =
    match get_str j "status" with
    | "ok" -> Ok
    | "unschedulable" -> Unschedulable
    | "rejected" -> Rejected
    | "error" -> Failed
    | s -> fail "unknown status %S" s
  in
  let p_reason =
    match J.member "reason" j with
    | Some v -> J.to_string v
    | None -> None
  in
  let p_body =
    match J.member "assignments" j with
    | Some (J.Arr xs) ->
        Periods
          (List.map
             (fun a ->
               { a_name = get_str a "name"; a_period = get_int a "period";
                 a_resp = get_int a "resp" })
             xs)
    | Some _ -> fail "member %S is not an array" "assignments"
    | None -> (
        match J.member "stats" j with
        | Some s ->
            Tenant_stats
              { st_cores = get_int s "cores"; st_rt = get_int s "rt";
                st_sec = get_int s "sec"; st_selects = get_int s "selects";
                st_warm_selects = get_int s "warm_selects";
                st_cache_entries = get_int s "cache_entries";
                st_cache_capacity = get_int s "cache_capacity";
                st_cache_hits = get_int s "cache_hits";
                st_cache_misses = get_int s "cache_misses";
                st_cache_evictions = get_int s "cache_evictions";
                st_cache_refreshes = get_int s "cache_refreshes" }
        | None -> (
            match J.member "metrics" j with
            | Some v -> (
                match J.to_string v with
                | Some s -> Metrics s
                | None -> fail "member %S is not a string" "metrics")
            | None -> No_body))
  in
  { p_id; p_tenant; p_status; p_reason; p_body }

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian length prefix, then that many bytes of
   JSON. *)

(* EINTR is retried here so a signal (the daemon's SIGUSR1 flight-dump
   trigger) never tears a frame: the offset tracks exactly how much was
   transferred, so resuming is always safe. *)
let rec write_all fd bytes off len =
  if len > 0 then begin
    match Unix.write fd bytes off len with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all fd bytes off len
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then fail "frame too large (%d bytes)" n;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

(* Reads exactly [len] bytes; [None] on EOF at offset 0 when
   [eof_ok]. *)
let read_exact fd len ~eof_ok =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Some b
    else
      match Unix.read fd b off (len - off) with
      | 0 ->
          if off = 0 && eof_ok then None
          else fail "unexpected EOF inside a frame (%d/%d bytes)" off len
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  match read_exact fd 4 ~eof_ok:true with
  | None -> None
  | Some hdr ->
      let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if n < 0 || n > max_frame then fail "bad frame length %d" n;
      if n = 0 then Some ""
      else begin
        match read_exact fd n ~eof_ok:false with
        | Some b -> Some (Bytes.unsafe_to_string b)
        | None -> assert false
      end
