(** Wire protocol of the admission-control daemon: the versioned
    [hydra_c.server/1] request/response schema and its length-prefixed
    framing (doc/SERVER.md).

    Every frame is a 4-byte big-endian payload length followed by one
    JSON document. Payload values are integers and strings only —
    never floats — and emission fixes the member order, so encoded
    responses are byte-stable: the committed serve-smoke fixture and
    the cross-[--jobs] identity checks compare frames verbatim. *)

exception Protocol_error of string
(** Malformed frame, malformed JSON, schema-version mismatch, or a
    shape error in a known message. *)

val version : string
(** ["hydra_c.server/1"] — the value of every message's ["v"]
    member. *)

type rt_spec = { r_name : string; r_wcet : int; r_period : int }
(** An RT task as named on the wire (implicit deadline = period;
    priorities are assigned rate-monotonically by the server). *)

type sec_spec = { s_name : string; s_wcet : int; s_period_max : int }
(** A security task as named on the wire (priority = arrival order,
    assigned by the server). *)

type op =
  | Init of { cores : int; rt : rt_spec list; sec : sec_spec list }
      (** create (or replace) the tenant with a full system *)
  | Rt_arrive of rt_spec  (** admit one RT task *)
  | Rt_leave of string  (** remove the RT task with this name *)
  | Sec_arrive of sec_spec  (** add one security task (lowest priority) *)
  | Sec_leave of string  (** remove the security task with this name *)
  | Set_cores of int  (** change the core count (full repartition) *)
  | Reselect  (** force a fresh period selection *)
  | Query  (** return the current selection without editing *)
  | Stats  (** return tenant/cache hygiene counters *)
  | Remove  (** drop the tenant *)
  | Shutdown  (** stop the daemon (handled by {!Daemon}, not the engine) *)
  | Obs_snapshot
      (** return a [hydra_c.metrics/1] snapshot of the daemon's live
          registry (handled by {!Daemon}; ["tenant"] is ignored).
          Leaves no footprint in the registry it reads, so a scrape
          does not perturb the metrics it returns. *)
  | Obs_stream
      (** return one [hydra_c.metrics_delta/1] line relative to this
          connection's previous [Obs_stream] request (handled by
          {!Daemon}); the first request carries the full state. *)

type request = { q_id : int; q_tenant : string; q_op : op }

val op_name : op -> string
(** The wire name of an op (["init"], ["query"], ["obs_snapshot"]...),
    as carried in the request's ["op"] member. *)

type assignment = { a_name : string; a_period : int; a_resp : int }
(** One row of a period selection: task name, selected period [T_s^*],
    WCRT under the final vector. *)

type stats = {
  st_cores : int;
  st_rt : int;  (** resident RT tasks *)
  st_sec : int;  (** resident security tasks *)
  st_selects : int;  (** materialized period selections *)
  st_warm_selects : int;  (** of those, warm-started ones *)
  st_cache_entries : int;
  st_cache_capacity : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_evictions : int;
  st_cache_refreshes : int;
}
(** The {!Hydra.Analysis.cache_stats} of the tenant's resident system
    plus engine-level counters, flattened to wire integers. *)

type status =
  | Ok
  | Unschedulable
      (** the edit was applied but some security task misses
          [T_s^max] *)
  | Rejected
      (** admission control refused the edit; tenant state unchanged *)
  | Failed  (** wire status ["error"]: bad request, unknown tenant... *)

type body =
  | Periods of assignment list
  | Tenant_stats of stats
  | Metrics of string
      (** verbatim metrics document (wire member ["metrics"], a JSON
          string): a full [hydra_c.metrics/1] snapshot for
          [Obs_snapshot], one [hydra_c.metrics_delta/1] line for
          [Obs_stream] *)
  | No_body

type response = {
  p_id : int;
  p_tenant : string;
  p_status : status;
  p_reason : string option;
  p_body : body;
}

val ok : id:int -> tenant:string -> body -> response
val unschedulable : id:int -> tenant:string -> response
val rejected : id:int -> tenant:string -> string -> response
val error : id:int -> tenant:string -> string -> response

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
(** Codecs for one frame payload. Decoders raise {!Protocol_error};
    [decode_* (encode_* x) = x] is property-tested in
    [test/test_server.ml]. *)

val write_frame : Unix.file_descr -> string -> unit
(** Length-prefix and write one payload (handles short writes). *)

val read_frame : Unix.file_descr -> string option
(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise Protocol_error on EOF mid-frame or an implausible length
    (negative or > 16 MiB). *)
