(* Accept loop of the admission-control daemon. One client is served
   at a time (clients queue in the listen backlog): the protocol is
   request/response over a Unix-domain socket, and the parallelism
   that matters — sharding tenant groups across domains — lives in
   {!Engine}, not in connection handling. *)

type config = {
  socket_path : string;
  jobs : int;
  incremental : bool;
  cache_capacity : int;
  max_batch : int;
}

let default_config ~socket_path =
  { socket_path; jobs = 1; incremental = true; cache_capacity = 0;
    max_batch = 64 }

(* Read the frames of one batch: block for the first, then keep
   draining frames that are already deliverable (poll with a zero
   timeout) up to [max_batch] — so a lockstep client gets one-request
   batches while a pipelining client gets its concurrent updates
   coalesced. Returns the raw payloads and whether EOF was seen. *)
let read_batch fd ~max_batch =
  match Protocol.read_frame fd with
  | None -> ([], true)
  | Some first ->
      let rec drain acc k =
        if k >= max_batch then (List.rev acc, false)
        else
          match Unix.select [ fd ] [] [] 0.0 with
          | [ _ ], _, _ -> (
              match Protocol.read_frame fd with
              | None -> (List.rev acc, true)
              | Some s -> drain (s :: acc) (k + 1))
          | _ -> (List.rev acc, false)
      in
      drain [ first ] 1

(* Decode one payload; a malformed frame still yields exactly one
   (error) response so request/response pairing survives. *)
let decode payload =
  match Protocol.decode_request payload with
  | q -> Ok q
  | exception Protocol.Protocol_error m -> Error m

let handle_batch engine obs payloads =
  let profile = Hydra_obs.profiling_enabled obs in
  let t0 = if profile then Hydra_obs.now_ns () else 0 in
  let decoded = List.map decode payloads in
  (* daemon-level ops are split out; everything else goes to the
     engine in one batch *)
  let engine_reqs =
    List.filter_map
      (function
        | Ok (q : Protocol.request) when q.q_op <> Protocol.Shutdown -> Some q
        | _ -> None)
      decoded
  in
  let engine_resps = ref (Engine.exec_batch engine engine_reqs) in
  let next_engine_resp () =
    match !engine_resps with
    | r :: rest ->
        engine_resps := rest;
        r
    | [] -> assert false
  in
  let stop = ref false in
  let responses =
    List.map
      (function
        | Error m -> Protocol.error ~id:(-1) ~tenant:"" m
        | Ok (q : Protocol.request) ->
            if q.q_op = Protocol.Shutdown then begin
              stop := true;
              Protocol.ok ~id:q.q_id ~tenant:q.q_tenant Protocol.No_body
            end
            else next_engine_resp ())
      decoded
  in
  if profile then begin
    let dt = Hydra_obs.now_ns () - t0 in
    List.iter (fun _ -> Hydra_obs.sample obs "server.latency" dt) payloads
  end;
  (responses, !stop)

let handle_client engine obs fd ~max_batch =
  let stop = ref false in
  let eof = ref false in
  while not (!eof || !stop) do
    let payloads, saw_eof = read_batch fd ~max_batch in
    eof := saw_eof;
    if payloads <> [] then begin
      let responses, shutdown = handle_batch engine obs payloads in
      List.iter
        (fun r -> Protocol.write_frame fd (Protocol.encode_response r))
        responses;
      if shutdown then stop := true
    end
  done;
  !stop

let serve ?obs ?(config = default_config ~socket_path:"hydra_c.sock")
    ?on_ready () =
  let engine =
    Engine.create ?obs ~jobs:config.jobs ~incremental:config.incremental
      ~cache_capacity:config.cache_capacity ()
  in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
    Engine.shutdown engine
  in
  Fun.protect ~finally:cleanup (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
      Unix.listen sock 8;
      (match on_ready with Some f -> f () | None -> ());
      let stop = ref false in
      while not !stop do
        let client, _ = Unix.accept sock in
        Hydra_obs.incr obs "server.connections";
        (match handle_client engine obs client ~max_batch:config.max_batch with
        | shutdown -> stop := shutdown
        | exception Protocol.Protocol_error _ -> ()
        | exception Unix.Unix_error _ -> ());
        try Unix.close client with Unix.Unix_error _ -> ()
      done)
