(* Accept loop of the admission-control daemon. One client is served
   at a time (clients queue in the listen backlog): the protocol is
   request/response over a Unix-domain socket, and the parallelism
   that matters — sharding tenant groups across domains — lives in
   {!Engine}, not in connection handling.

   Observability plumbing lives here too: trace contexts are minted
   per request at accept and ride through the engine, every batch
   drops breadcrumbs into the always-on flight recorder, and the
   [obs_snapshot]/[obs_stream] protocol ops are answered from the
   live registry without touching it. *)

type config = {
  socket_path : string;
  jobs : int;
  incremental : bool;
  cache_capacity : int;
  max_batch : int;
  trace_sample_rate : float;
  slow_request_ms : int;
  flight_path : string option;
}

let default_config ~socket_path =
  { socket_path; jobs = 1; incremental = true; cache_capacity = 0;
    max_batch = 64; trace_sample_rate = 0.0; slow_request_ms = 0;
    flight_path = None }

(* SIGUSR1 only sets this flag; the dump itself runs on the accept
   loop at the next safe point (between batches or on an interrupted
   accept), never inside the signal handler. *)
let dump_requested = Atomic.make false

(* Everything a connection handler needs, wired once per [serve]. *)
type server = {
  engine : Engine.t;
  obs : Hydra_obs.t option;
  flight : Hydra_obs.Flight.t;
  sampler : Hydra_obs.Trace_ctx.sampler option;  (* None = tracing off *)
  log : Hydra_obs.Log.t;
  slow_ns : int;  (* 0 = slow-request detection off *)
  flight_file : string;
  slo : (string, Hydra_obs.Window.t) Hashtbl.t;
  mutable batches_seen : int;  (* drives SLO window rotation *)
}

(* Per-connection state: the connection counter is lazy (bumped at the
   first engine-bound request, so scrape-only and shutdown-only
   connections leave no registry footprint) and each connection owns
   its own delta-tracker position for [obs_stream]. *)
type conn = {
  mutable counted : bool;
  mutable delta : Hydra_obs.Snapshot.Delta.tracker option;
}

let slo_rotate_every = 16  (* batches per SLO window epoch *)

let dump_flight srv ~reason =
  match Hydra_obs.Flight.dump_to srv.flight ~path:srv.flight_file with
  | () ->
      Hydra_obs.Log.log srv.log "flight_dump"
        [ ("path", srv.flight_file); ("reason", reason);
          ("events", string_of_int (Hydra_obs.Flight.recorded srv.flight)) ]
  | exception Sys_error m ->
      Hydra_obs.Log.log srv.log "flight_dump_failed"
        [ ("path", srv.flight_file); ("error", m) ]

let check_dump_signal srv =
  if Atomic.get dump_requested then begin
    Atomic.set dump_requested false;
    dump_flight srv ~reason:"sigusr1"
  end

(* Read the frames of one batch: block for the first, then keep
   draining frames that are already deliverable (poll with a zero
   timeout) up to [max_batch] — so a lockstep client gets one-request
   batches while a pipelining client gets its concurrent updates
   coalesced. Returns the raw payloads and whether EOF was seen. *)
let read_batch fd ~max_batch =
  match Protocol.read_frame fd with
  | None -> ([], true)
  | Some first ->
      let rec drain acc k =
        if k >= max_batch then (List.rev acc, false)
        else
          match Unix.select [ fd ] [] [] 0.0 with
          | [ _ ], _, _ -> (
              match Protocol.read_frame fd with
              | None -> (List.rev acc, true)
              | Some s -> drain (s :: acc) (k + 1))
          | _ -> (List.rev acc, false)
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (List.rev acc, false)
      in
      drain [ first ] 1

(* Decode one payload; a malformed frame still yields exactly one
   (error) response so request/response pairing survives. *)
let decode payload =
  match Protocol.decode_request payload with
  | q -> Ok q
  | exception Protocol.Protocol_error m -> Error m

(* Shutdown/obs ops never reach the engine: they answer from daemon
   state, and keeping them out of [exec_batch] keeps them out of the
   server.* workload counters — a scrape must not perturb the metrics
   it returns. *)
let is_daemon_op (op : Protocol.op) =
  match op with
  | Protocol.Shutdown | Protocol.Obs_snapshot | Protocol.Obs_stream -> true
  | _ -> false

let status_code (r : Protocol.response) =
  match r.p_status with
  | Protocol.Ok -> 0
  | Protocol.Unschedulable -> 1
  | Protocol.Rejected -> 2
  | Protocol.Failed -> 3

let obs_snapshot_resp srv (q : Protocol.request) =
  match srv.obs with
  | None ->
      Protocol.error ~id:q.q_id ~tenant:q.q_tenant
        "no metrics registry attached to this daemon"
  | Some o ->
      Protocol.ok ~id:q.q_id ~tenant:q.q_tenant
        (Metrics (Hydra_obs.Snapshot.to_json o))

let obs_stream_resp srv cn (q : Protocol.request) =
  match srv.obs with
  | None ->
      Protocol.error ~id:q.q_id ~tenant:q.q_tenant
        "no metrics registry attached to this daemon"
  | Some o ->
      let tracker =
        match cn.delta with
        | Some d -> d
        | None ->
            let d = Hydra_obs.Snapshot.Delta.create o in
            cn.delta <- Some d;
            d
      in
      Protocol.ok ~id:q.q_id ~tenant:q.q_tenant
        (Metrics (Hydra_obs.Snapshot.Delta.line tracker))

let slo_window srv tenant =
  match Hashtbl.find_opt srv.slo tenant with
  | Some w -> w
  | None ->
      let w = Hydra_obs.Window.create () in
      Hashtbl.add srv.slo tenant w;
      w

(* Rotate every tenant's SLO window each [slo_rotate_every] batches,
   warning (rate-limited) about tenants whose sliding p99 exceeds the
   slow-request threshold before their oldest epoch ages out. *)
let slo_tick srv =
  srv.batches_seen <- srv.batches_seen + 1;
  if srv.batches_seen mod slo_rotate_every = 0 then
    Hashtbl.fold (fun tenant w acc -> (tenant, w) :: acc) srv.slo []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (tenant, w) ->
           (match Hydra_obs.Window.quantile w 0.99 with
           | Some p99 when srv.slow_ns > 0 && p99 > srv.slow_ns ->
               Hydra_obs.Log.log srv.log "tenant_slo_breach"
                 [ ("tenant", tenant); ("p99_ns", string_of_int p99);
                   ("threshold_ns", string_of_int srv.slow_ns);
                   ("samples", string_of_int (Hydra_obs.Window.count w)) ]
           | _ -> ());
           Hydra_obs.Window.rotate w)

let handle_batch srv cn payloads =
  let obs = srv.obs in
  let profile = Hydra_obs.profiling_enabled obs in
  let t0 = Hydra_obs.now_ns () in
  Hydra_obs.Flight.record srv.flight ~ts:t0 ~kind:Hydra_obs.Flight.Accept
    ~tenant:(-1) ~a:(List.length payloads) ~b:0;
  (* trace contexts are minted here, at accept, one sampling decision
     per request — daemon-level ops included *)
  let ctxs =
    List.map
      (fun _ ->
        match srv.sampler with
        | None -> None
        | Some s -> Hydra_obs.Trace_ctx.sample s)
      payloads
  in
  let decoded =
    List.map2
      (fun ctx payload ->
        let dctx = Option.map Hydra_obs.Trace_ctx.child ctx in
        let r =
          Hydra_obs.trace_span obs dctx "server.decode" (fun () ->
              decode payload)
        in
        Hydra_obs.Flight.record srv.flight ~ts:(Hydra_obs.now_ns ())
          ~kind:Hydra_obs.Flight.Decode ~tenant:(-1) ~a:0
          ~b:(match r with Ok _ -> 0 | Error _ -> 1);
        r)
      ctxs payloads
  in
  (* daemon-level ops are split out; everything else goes to the
     engine in one batch, each request riding with its context *)
  let engine_reqs, engine_ctxs =
    let rs = ref [] and cs = ref [] in
    List.iter2
      (fun ctx d ->
        match d with
        | Ok (q : Protocol.request) when not (is_daemon_op q.q_op) ->
            rs := q :: !rs;
            cs := ctx :: !cs
        | _ -> ())
      ctxs decoded;
    (List.rev !rs, List.rev !cs)
  in
  if engine_reqs <> [] && not cn.counted then begin
    cn.counted <- true;
    Hydra_obs.incr obs "server.connections"
  end;
  let engine_resps =
    ref
      (if engine_reqs = [] then []
       else
         Engine.exec_batch ~ctxs:(Array.of_list engine_ctxs)
           ~flight:srv.flight srv.engine engine_reqs)
  in
  let next_engine_resp () =
    match !engine_resps with
    | r :: rest ->
        engine_resps := rest;
        r
    | [] -> assert false
  in
  let stop = ref false in
  let responses =
    List.map
      (function
        | Error m -> Protocol.error ~id:(-1) ~tenant:"" m
        | Ok (q : Protocol.request) -> (
            match q.q_op with
            | Protocol.Shutdown ->
                stop := true;
                Protocol.ok ~id:q.q_id ~tenant:q.q_tenant Protocol.No_body
            | Protocol.Obs_snapshot -> obs_snapshot_resp srv q
            | Protocol.Obs_stream -> obs_stream_resp srv cn q
            | _ -> next_engine_resp ()))
      decoded
  in
  let t1 = Hydra_obs.now_ns () in
  let dt = t1 - t0 in
  (* one Reply breadcrumb and one root span per request; the root span
     covers accept through reply, so child spans nest under it *)
  List.iter2
    (fun ctx (r : Protocol.response) ->
      Hydra_obs.Flight.record srv.flight ~ts:t1 ~kind:Hydra_obs.Flight.Reply
        ~tenant:(-1) ~a:dt ~b:(status_code r);
      Hydra_obs.trace_emit obs ctx "server.request" ~start_ns:t0 ~dur_ns:dt)
    ctxs responses;
  if profile then begin
    List.iter (fun _ -> Hydra_obs.sample obs "server.latency" dt) payloads;
    (* per-tenant SLO signals: registry histograms/counters for the
       scrape path, daemon-local sliding windows for breach warnings.
       Both carry wall-clock, so both sit behind the profiling gate —
       default snapshots stay byte-identical across --jobs. *)
    List.iter
      (fun d ->
        match d with
        | Ok (q : Protocol.request) when not (is_daemon_op q.q_op) ->
            Hydra_obs.sample obs
              ("server.tenant." ^ q.q_tenant ^ ".latency_ns")
              dt;
            Hydra_obs.Window.record (slo_window srv q.q_tenant) dt
        | _ -> ())
      decoded;
    List.iter
      (fun (r : Protocol.response) ->
        match r.p_status with
        | Protocol.Rejected | Protocol.Failed ->
            if r.p_tenant <> "" then
              Hydra_obs.incr obs ("server.tenant." ^ r.p_tenant ^ ".errors")
        | Protocol.Ok | Protocol.Unschedulable -> ())
      responses;
    slo_tick srv
  end;
  if srv.slow_ns > 0 && dt > srv.slow_ns then begin
    Hydra_obs.Flight.record srv.flight ~ts:t1 ~kind:Hydra_obs.Flight.Slow
      ~tenant:(-1) ~a:dt ~b:(List.length payloads);
    Hydra_obs.Log.log srv.log "slow_batch"
      [ ("duration_ns", string_of_int dt);
        ("requests", string_of_int (List.length payloads)) ];
    dump_flight srv ~reason:"slow"
  end;
  (responses, !stop)

let handle_client srv cn fd ~max_batch =
  let stop = ref false in
  let eof = ref false in
  while not (!eof || !stop) do
    let payloads, saw_eof = read_batch fd ~max_batch in
    eof := saw_eof;
    if payloads <> [] then begin
      let responses, shutdown = handle_batch srv cn payloads in
      List.iter
        (fun r -> Protocol.write_frame fd (Protocol.encode_response r))
        responses;
      if shutdown then stop := true
    end;
    check_dump_signal srv
  done;
  !stop

let serve ?obs ?(config = default_config ~socket_path:"hydra_c.sock")
    ?on_ready () =
  let engine =
    Engine.create ?obs ~jobs:config.jobs ~incremental:config.incremental
      ~cache_capacity:config.cache_capacity ()
  in
  let srv =
    { engine; obs; flight = Hydra_obs.Flight.create ();
      sampler =
        (if config.trace_sample_rate > 0.0 then
           Some (Hydra_obs.Trace_ctx.sampler ~rate:config.trace_sample_rate)
         else None);
      log = Hydra_obs.Log.create (); slo = Hashtbl.create 8; batches_seen = 0;
      slow_ns = config.slow_request_ms * 1_000_000;
      flight_file =
        (match config.flight_path with
        | Some p -> p
        | None -> config.socket_path ^ ".flight.jsonl") }
  in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  let old_usr1 =
    (* unavailable on platforms without SIGUSR1; the daemon still runs,
       just without the on-demand dump trigger *)
    match
      Sys.signal Sys.sigusr1
        (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true))
    with
    | h -> Some h
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let cleanup () =
    (match old_usr1 with
    | Some h -> (
        try Sys.set_signal Sys.sigusr1 h
        with Invalid_argument _ | Sys_error _ -> ())
    | None -> ());
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
    (* an explicit --flight-out asks for a dump even on a clean
       shutdown — a deterministic artifact for CI *)
    if config.flight_path <> None then dump_flight srv ~reason:"shutdown";
    Engine.shutdown engine
  in
  Fun.protect ~finally:cleanup (fun () ->
      try
        Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
        Unix.listen sock 8;
        (match on_ready with Some f -> f () | None -> ());
        let stop = ref false in
        while not !stop do
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              check_dump_signal srv
          | client, _ ->
              (let cn = { counted = false; delta = None } in
               match handle_client srv cn client ~max_batch:config.max_batch with
               | shutdown -> stop := shutdown
               | exception Protocol.Protocol_error m ->
                   Hydra_obs.Flight.record srv.flight
                     ~ts:(Hydra_obs.now_ns ()) ~kind:Hydra_obs.Flight.Error
                     ~tenant:(-1) ~a:0 ~b:0;
                   Hydra_obs.Log.log srv.log "protocol_error" [ ("error", m) ]
               | exception Unix.Unix_error (e, _, _) ->
                   Hydra_obs.Flight.record srv.flight
                     ~ts:(Hydra_obs.now_ns ()) ~kind:Hydra_obs.Flight.Error
                     ~tenant:(-1) ~a:0 ~b:1;
                   Hydra_obs.Log.log srv.log "io_error"
                     [ ("error", Unix.error_message e) ]);
              (try Unix.close client with Unix.Unix_error _ -> ());
              check_dump_signal srv
        done
      with e ->
        (* uncaught failure: preserve the last events for post-mortem,
           then let the exception escape through cleanup *)
        dump_flight srv ~reason:"crash";
        raise e)
