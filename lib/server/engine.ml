module Pool = Parallel.Pool
module Period_selection = Hydra.Period_selection

type t = {
  obs : Hydra_obs.t option;
  tenants : (string, Tenant.t) Hashtbl.t;
  pool : Pool.Static.t;
  incremental : bool;
  cache_capacity : int;
}

let create ?obs ?(jobs = 1) ?(incremental = true) ?(cache_capacity = 0) () =
  { obs; tenants = Hashtbl.create 16; pool = Pool.Static.create ~jobs;
    incremental; cache_capacity }

let shutdown t = Pool.Static.shutdown t.pool
let jobs t = Pool.Static.jobs t.pool
let tenant_count t = Hashtbl.length t.tenants
let find_tenant t name = Hashtbl.find_opt t.tenants name
let incremental t = t.incremental

let op_counter (op : Protocol.op) =
  match op with
  | Init _ -> "server.req.init"
  | Rt_arrive _ | Sec_arrive _ -> "server.req.arrive"
  | Rt_leave _ | Sec_leave _ -> "server.req.leave"
  | Set_cores _ -> "server.req.set_cores"
  | Reselect -> "server.req.reselect"
  | Query -> "server.req.query"
  | Stats -> "server.req.stats"
  | Remove -> "server.req.remove"
  | Shutdown -> "server.req.shutdown"
  | Obs_snapshot -> "server.req.obs_snapshot"
  | Obs_stream -> "server.req.obs_stream"

let rows assignments =
  List.map
    (fun (a : Period_selection.assignment) ->
      { Protocol.a_name = a.sec.Rtsched.Task.sec_name; a_period = a.period;
        a_resp = a.resp })
    assignments

(* One tenant group of a batch, processed by exactly one domain.
   Dirty ops (init/arrive/leave/set_cores/reselect) are coalesced:
   their edits apply immediately, but the period selection runs once —
   at the next [Query]/[Remove]/[Init] barrier or at group end — and
   every pending requester receives that one final selection.

   [ftid] is the group's interned flight-recorder tenant id (-1 when
   no recorder is attached); every request rides with its optional
   trace context, and a traced request's worker-side processing is a
   ["server.apply"] child span. *)
let run_group ~obs ~incremental ~cache_capacity ~flight ~ftid ~name state reqs =
  let tenant = ref state in
  let pending = ref [] in
  (* (pos, id, ctx) of coalesced dirty ops *)
  let out = ref [] in
  let emit pos r = out := (pos, r) :: !out in
  let materialize ctx tn =
    match flight with
    | None -> Tenant.materialize ?obs ?ctx ~incremental tn
    | Some fl ->
        let t0 = Hydra_obs.now_ns () in
        let result = Tenant.materialize ?obs ?ctx ~incremental tn in
        Hydra_obs.Flight.record fl ~ts:(Hydra_obs.now_ns ())
          ~kind:Hydra_obs.Flight.Select ~tenant:ftid
          ~a:(Hydra_obs.now_ns () - t0) ~b:0;
        result
  in
  let flush () =
    match !pending with
    | [] -> ()
    | ps -> (
        match !tenant with
        | None ->
            (* unreachable: pending is only pushed while a tenant
               exists, and Remove/Init flush before changing it *)
            List.iter
              (fun (pos, id, _) ->
                emit pos (Protocol.error ~id ~tenant:name "tenant vanished"))
              (List.rev ps);
            pending := []
        | Some tn ->
            let ps = List.rev ps in
            (match flight with
            | None -> ()
            | Some fl ->
                Hydra_obs.Flight.record fl ~ts:(Hydra_obs.now_ns ())
                  ~kind:Hydra_obs.Flight.Coalesce ~tenant:ftid
                  ~a:(List.length ps) ~b:0);
            (* the selection is attributed to the first traced
               requester among the coalesced ops *)
            let sel_ctx =
              List.fold_left
                (fun acc (_, _, c) ->
                  match acc with Some _ -> acc | None -> c)
                None ps
            in
            let result = materialize sel_ctx tn in
            let respond id =
              match result with
              | Period_selection.Schedulable assignments ->
                  Protocol.ok ~id ~tenant:name (Periods (rows assignments))
              | Period_selection.Unschedulable ->
                  Protocol.unschedulable ~id ~tenant:name
            in
            List.iter (fun (pos, id, _) -> emit pos (respond id)) ps;
            pending := [])
  in
  let require_tenant pos id k =
    match !tenant with
    | Some tn -> k tn
    | None ->
        emit pos
          (Protocol.error ~id ~tenant:name
             (Printf.sprintf "unknown tenant %S" name))
  in
  let on_admission pos id ctx = function
    | Tenant.Admitted () -> pending := (pos, id, ctx) :: !pending
    | Tenant.Rejected reason -> emit pos (Protocol.rejected ~id ~tenant:name reason)
    | Tenant.Invalid reason -> emit pos (Protocol.error ~id ~tenant:name reason)
  in
  List.iter
    (fun (pos, ctx, (q : Protocol.request)) ->
      let id = q.q_id in
      Hydra_obs.incr obs (op_counter q.q_op);
      let actx = Option.map Hydra_obs.Trace_ctx.child ctx in
      Hydra_obs.trace_span obs actx "server.apply" @@ fun () ->
      try
        match q.q_op with
        | Init { cores; rt; sec } -> (
            (* a replacement system: answer pending requests against
               the outgoing state first *)
            flush ();
            match Tenant.create ~name ~cache_capacity ~cores ~rt ~sec with
            | Tenant.Admitted tn ->
                tenant := Some tn;
                pending := [ (pos, id, actx) ]
            | Tenant.Rejected reason ->
                emit pos (Protocol.rejected ~id ~tenant:name reason)
            | Tenant.Invalid reason ->
                emit pos (Protocol.error ~id ~tenant:name reason))
        | Rt_arrive spec ->
            require_tenant pos id (fun tn ->
                on_admission pos id actx (Tenant.rt_arrive tn spec))
        | Rt_leave nm ->
            require_tenant pos id (fun tn ->
                on_admission pos id actx (Tenant.rt_leave tn nm))
        | Sec_arrive spec ->
            require_tenant pos id (fun tn ->
                on_admission pos id actx (Tenant.sec_arrive tn spec))
        | Sec_leave nm ->
            require_tenant pos id (fun tn ->
                on_admission pos id actx (Tenant.sec_leave tn nm))
        | Set_cores cores ->
            require_tenant pos id (fun tn ->
                on_admission pos id actx (Tenant.set_cores tn cores))
        | Reselect ->
            require_tenant pos id (fun tn ->
                Tenant.touch tn;
                on_admission pos id actx (Tenant.Admitted ()))
        | Query ->
            require_tenant pos id (fun tn ->
                flush ();
                let result = materialize actx tn in
                emit pos
                  (match result with
                  | Period_selection.Schedulable assignments ->
                      Protocol.ok ~id ~tenant:name (Periods (rows assignments))
                  | Period_selection.Unschedulable ->
                      Protocol.unschedulable ~id ~tenant:name))
        | Stats ->
            require_tenant pos id (fun tn ->
                emit pos
                  (Protocol.ok ~id ~tenant:name
                     (Tenant_stats (Tenant.stats tn))))
        | Remove ->
            require_tenant pos id (fun _ ->
                flush ();
                tenant := None;
                emit pos (Protocol.ok ~id ~tenant:name No_body))
        | Shutdown ->
            emit pos
              (Protocol.error ~id ~tenant:name
                 "shutdown is a daemon request, not a tenant op")
        | Obs_snapshot | Obs_stream ->
            emit pos
              (Protocol.error ~id ~tenant:name
                 (Protocol.op_name q.q_op
                 ^ " is a daemon request, not a tenant op"))
      with e ->
        emit pos
          (Protocol.error ~id ~tenant:name
             (Printf.sprintf "internal error: %s" (Printexc.to_string e))))
    reqs;
  flush ();
  (!tenant, !out)

let exec_batch ?ctxs ?flight t (batch : Protocol.request list) :
    Protocol.response list =
  let reqs = Array.of_list batch in
  let n = Array.length reqs in
  let ctxs =
    match ctxs with
    | None -> Array.make (max n 1) None
    | Some c ->
        if Array.length c <> n then
          invalid_arg "Engine.exec_batch: ctxs length <> batch length";
        c
  in
  let obs = t.obs in
  Hydra_obs.incr obs "server.batches";
  Hydra_obs.add obs "server.requests" n;
  if n = 0 then []
  else begin
    (* group request positions by tenant, first-occurrence order —
       deterministic sharding: the grouping, and which group an index
       lands in, depend only on the batch contents *)
    let order = ref [] in
    let index :
        ( string,
          (int * Hydra_obs.Trace_ctx.t option * Protocol.request) list ref )
        Hashtbl.t =
      Hashtbl.create 8
    in
    Array.iteri
      (fun i q ->
        match Hashtbl.find_opt index q.Protocol.q_tenant with
        | Some cell -> cell := (i, ctxs.(i), q) :: !cell
        | None ->
            Hashtbl.add index q.Protocol.q_tenant (ref [ (i, ctxs.(i), q) ]);
            order := q.Protocol.q_tenant :: !order)
      reqs;
    let names = Array.of_list (List.rev !order) in
    let n_groups = Array.length names in
    Hydra_obs.observe obs "server.batch.groups" n_groups;
    let members =
      Array.map (fun nm -> List.rev !(Hashtbl.find index nm)) names
    in
    (* intern flight tenant ids once per batch, on the calling domain *)
    let ftids =
      match flight with
      | None -> [||]
      | Some fl -> Array.map (fun nm -> Hydra_obs.Flight.intern fl nm) names
    in
    (* departure end of every traced request's cross-domain flow
       arrow, stamped on the dispatching domain; the arrival end lands
       on whichever worker claims the request's group ([on_item]) *)
    Array.iteri
      (fun i _ -> Hydra_obs.flow_begin obs ctxs.(i) "server.dispatch")
      reqs;
    let on_item g =
      List.iter
        (fun (_, ctx, _) -> Hydra_obs.flow_end obs ctx "server.dispatch")
        members.(g)
    in
    (* pre-fetch tenant records on the calling domain; each group is
       then owned exclusively by one worker *)
    let states = Array.map (fun nm -> Hashtbl.find_opt t.tenants nm) names in
    let profile = Hydra_obs.profiling_enabled obs in
    let results =
      Pool.Static.map ?obs ~on_item t.pool
        (fun g ->
          let ms = members.(g) in
          let ftid = if g < Array.length ftids then ftids.(g) else -1 in
          (match flight with
          | None -> ()
          | Some fl ->
              Hydra_obs.Flight.record fl ~ts:(Hydra_obs.now_ns ())
                ~kind:Hydra_obs.Flight.Shard ~tenant:ftid
                ~a:(List.length ms) ~b:g);
          let run () =
            run_group ~obs ~incremental:t.incremental
              ~cache_capacity:t.cache_capacity ~flight ~ftid ~name:names.(g)
              states.(g) ms
          in
          if profile then Hydra_obs.span obs "server.shard" run else run ())
        n_groups
    in
    (* table updates happen only here, back on the calling domain *)
    Array.iteri
      (fun g (after, _) ->
        match after with
        | Some tn -> Hashtbl.replace t.tenants names.(g) tn
        | None -> Hashtbl.remove t.tenants names.(g))
      results;
    let out = Array.make n None in
    Array.iter
      (fun (_, resps) ->
        List.iter (fun (pos, r) -> out.(pos) <- Some r) resps)
      results;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every request got exactly one response *))
         out)
  end
