module Pool = Parallel.Pool
module Period_selection = Hydra.Period_selection

type t = {
  obs : Hydra_obs.t option;
  tenants : (string, Tenant.t) Hashtbl.t;
  pool : Pool.Static.t;
  incremental : bool;
  cache_capacity : int;
}

let create ?obs ?(jobs = 1) ?(incremental = true) ?(cache_capacity = 0) () =
  { obs; tenants = Hashtbl.create 16; pool = Pool.Static.create ~jobs;
    incremental; cache_capacity }

let shutdown t = Pool.Static.shutdown t.pool
let jobs t = Pool.Static.jobs t.pool
let tenant_count t = Hashtbl.length t.tenants
let find_tenant t name = Hashtbl.find_opt t.tenants name
let incremental t = t.incremental

let op_counter (op : Protocol.op) =
  match op with
  | Init _ -> "server.req.init"
  | Rt_arrive _ | Sec_arrive _ -> "server.req.arrive"
  | Rt_leave _ | Sec_leave _ -> "server.req.leave"
  | Set_cores _ -> "server.req.set_cores"
  | Reselect -> "server.req.reselect"
  | Query -> "server.req.query"
  | Stats -> "server.req.stats"
  | Remove -> "server.req.remove"
  | Shutdown -> "server.req.shutdown"

let rows assignments =
  List.map
    (fun (a : Period_selection.assignment) ->
      { Protocol.a_name = a.sec.Rtsched.Task.sec_name; a_period = a.period;
        a_resp = a.resp })
    assignments

(* One tenant group of a batch, processed by exactly one domain.
   Dirty ops (init/arrive/leave/set_cores/reselect) are coalesced:
   their edits apply immediately, but the period selection runs once —
   at the next [Query]/[Remove]/[Init] barrier or at group end — and
   every pending requester receives that one final selection. *)
let run_group ~obs ~incremental ~cache_capacity ~name state reqs =
  let tenant = ref state in
  let pending = ref [] in
  (* (pos, id) of coalesced dirty ops *)
  let out = ref [] in
  let emit pos r = out := (pos, r) :: !out in
  let flush () =
    match !pending with
    | [] -> ()
    | ps -> (
        match !tenant with
        | None ->
            (* unreachable: pending is only pushed while a tenant
               exists, and Remove/Init flush before changing it *)
            List.iter
              (fun (pos, id) ->
                emit pos (Protocol.error ~id ~tenant:name "tenant vanished"))
              (List.rev ps);
            pending := []
        | Some tn ->
            let result = Tenant.materialize ?obs ~incremental tn in
            let respond id =
              match result with
              | Period_selection.Schedulable assignments ->
                  Protocol.ok ~id ~tenant:name (Periods (rows assignments))
              | Period_selection.Unschedulable ->
                  Protocol.unschedulable ~id ~tenant:name
            in
            List.iter (fun (pos, id) -> emit pos (respond id)) (List.rev ps);
            pending := [])
  in
  let require_tenant pos id k =
    match !tenant with
    | Some tn -> k tn
    | None ->
        emit pos
          (Protocol.error ~id ~tenant:name
             (Printf.sprintf "unknown tenant %S" name))
  in
  let on_admission pos id = function
    | Tenant.Admitted () -> pending := (pos, id) :: !pending
    | Tenant.Rejected reason -> emit pos (Protocol.rejected ~id ~tenant:name reason)
    | Tenant.Invalid reason -> emit pos (Protocol.error ~id ~tenant:name reason)
  in
  List.iter
    (fun (pos, (q : Protocol.request)) ->
      let id = q.q_id in
      Hydra_obs.incr obs (op_counter q.q_op);
      try
        match q.q_op with
        | Init { cores; rt; sec } -> (
            (* a replacement system: answer pending requests against
               the outgoing state first *)
            flush ();
            match Tenant.create ~name ~cache_capacity ~cores ~rt ~sec with
            | Tenant.Admitted tn ->
                tenant := Some tn;
                pending := [ (pos, id) ]
            | Tenant.Rejected reason ->
                emit pos (Protocol.rejected ~id ~tenant:name reason)
            | Tenant.Invalid reason ->
                emit pos (Protocol.error ~id ~tenant:name reason))
        | Rt_arrive spec ->
            require_tenant pos id (fun tn ->
                on_admission pos id (Tenant.rt_arrive tn spec))
        | Rt_leave nm ->
            require_tenant pos id (fun tn ->
                on_admission pos id (Tenant.rt_leave tn nm))
        | Sec_arrive spec ->
            require_tenant pos id (fun tn ->
                on_admission pos id (Tenant.sec_arrive tn spec))
        | Sec_leave nm ->
            require_tenant pos id (fun tn ->
                on_admission pos id (Tenant.sec_leave tn nm))
        | Set_cores cores ->
            require_tenant pos id (fun tn ->
                on_admission pos id (Tenant.set_cores tn cores))
        | Reselect ->
            require_tenant pos id (fun tn ->
                Tenant.touch tn;
                on_admission pos id (Tenant.Admitted ()))
        | Query ->
            require_tenant pos id (fun tn ->
                flush ();
                let result = Tenant.materialize ?obs ~incremental tn in
                emit pos
                  (match result with
                  | Period_selection.Schedulable assignments ->
                      Protocol.ok ~id ~tenant:name (Periods (rows assignments))
                  | Period_selection.Unschedulable ->
                      Protocol.unschedulable ~id ~tenant:name))
        | Stats ->
            require_tenant pos id (fun tn ->
                emit pos
                  (Protocol.ok ~id ~tenant:name
                     (Tenant_stats (Tenant.stats tn))))
        | Remove ->
            require_tenant pos id (fun _ ->
                flush ();
                tenant := None;
                emit pos (Protocol.ok ~id ~tenant:name No_body))
        | Shutdown ->
            emit pos
              (Protocol.error ~id ~tenant:name
                 "shutdown is a daemon request, not a tenant op")
      with e ->
        emit pos
          (Protocol.error ~id ~tenant:name
             (Printf.sprintf "internal error: %s" (Printexc.to_string e))))
    reqs;
  flush ();
  (!tenant, !out)

let exec_batch t (batch : Protocol.request list) : Protocol.response list =
  let reqs = Array.of_list batch in
  let n = Array.length reqs in
  let obs = t.obs in
  Hydra_obs.incr obs "server.batches";
  Hydra_obs.add obs "server.requests" n;
  if n = 0 then []
  else begin
    (* group request positions by tenant, first-occurrence order —
       deterministic sharding: the grouping, and which group an index
       lands in, depend only on the batch contents *)
    let order = ref [] in
    let index : (string, (int * Protocol.request) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    Array.iteri
      (fun i q ->
        match Hashtbl.find_opt index q.Protocol.q_tenant with
        | Some cell -> cell := (i, q) :: !cell
        | None ->
            Hashtbl.add index q.Protocol.q_tenant (ref [ (i, q) ]);
            order := q.Protocol.q_tenant :: !order)
      reqs;
    let names = Array.of_list (List.rev !order) in
    let n_groups = Array.length names in
    Hydra_obs.observe obs "server.batch.groups" n_groups;
    (* pre-fetch tenant records on the calling domain; each group is
       then owned exclusively by one worker *)
    let states = Array.map (fun nm -> Hashtbl.find_opt t.tenants nm) names in
    let profile = Hydra_obs.profiling_enabled obs in
    let results =
      Pool.Static.map ?obs t.pool
        (fun g ->
          let run () =
            run_group ~obs ~incremental:t.incremental
              ~cache_capacity:t.cache_capacity ~name:names.(g) states.(g)
              (List.rev !(Hashtbl.find index names.(g)))
          in
          if profile then Hydra_obs.span obs "server.shard" run else run ())
        n_groups
    in
    (* table updates happen only here, back on the calling domain *)
    Array.iteri
      (fun g (after, _) ->
        match after with
        | Some tn -> Hashtbl.replace t.tenants names.(g) tn
        | None -> Hashtbl.remove t.tenants names.(g))
      results;
    let out = Array.make n None in
    Array.iter
      (fun (_, resps) ->
        List.iter (fun (pos, r) -> out.(pos) <- Some r) resps)
      results;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every request got exactly one response *))
         out)
  end
