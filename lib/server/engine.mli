(** Batch execution core of the admission-control daemon: many
    resident {!Tenant}s, request batches coalesced per tenant and
    sharded across domains (doc/SERVER.md).

    {b Determinism contract.} For a given batch schedule (the
    partition of the request stream into batches), responses are
    byte-identical for every [jobs] value: requests are grouped by
    tenant in first-occurrence order, each group is processed
    sequentially by exactly one worker (a {!Parallel.Pool.Static}
    pool), tenants are disjoint between groups, and responses are
    slotted back by request position. Registry counters are
    order-commutative sums, so metrics snapshots agree too;
    wall-clock spans ([server.shard]) and latency histograms sit
    behind the profiling gate.

    {b Coalescing.} Within a group, consecutive dirty ops (init,
    arrive, leave, set_cores, reselect) apply their state edits
    immediately but share one period selection, run at the next
    [Query]/[Remove]/[Init] barrier or at group end; each coalesced
    requester receives the final selection. [server.select] counts
    materializations — under load it grows much slower than
    [server.req.*]. *)

type t

val create :
  ?obs:Hydra_obs.t -> ?jobs:int -> ?incremental:bool ->
  ?cache_capacity:int -> unit -> t
(** [jobs] (default 1) sizes the persistent worker pool.
    [incremental] (default [true]) selects the warm path (resident
    caches, warm floors, search hints, cached clean-tenant results);
    [false] is the stateless per-request baseline: every request
    re-selects on a fresh system — queries included. Results are
    bit-identical either way. [cache_capacity] bounds every tenant's
    workload cache ({!Hydra.Analysis.set_cache_capacity};
    0 = unbounded). *)

val exec_batch :
  ?ctxs:Hydra_obs.Trace_ctx.t option array ->
  ?flight:Hydra_obs.Flight.t -> t -> Protocol.request list ->
  Protocol.response list
(** Execute one batch; the response list is in request order, one
    response per request. Never raises on bad requests — they map to
    [rejected]/[error] responses ([Shutdown], [Obs_snapshot] and
    [Obs_stream] too: they are daemon-level, see {!Daemon}).

    [ctxs], when given, must have one slot per request: a [Some]
    context marks a {e traced} request, whose dispatch to a worker
    becomes a cross-domain flow arrow ([server.dispatch]) and whose
    worker-side processing a ["server.apply"] child span with a
    nested ["server.select"] when it triggers a selection. [flight]
    attaches a flight recorder: the engine drops [Shard], [Coalesce]
    and [Select] events into the ring as the batch executes. Neither
    affects responses or snapshot metrics.

    @raise Invalid_argument if [ctxs] has a different length than the
    batch. *)

val shutdown : t -> unit
(** Stop the worker pool. The engine must not be used afterwards. *)

val jobs : t -> int
val incremental : t -> bool
val tenant_count : t -> int
val find_tenant : t -> string -> Tenant.t option
(** Test hook: the resident tenant record, if any. *)
