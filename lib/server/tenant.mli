(** One resident tenant of the admission-control daemon: a mutable
    system (RT partition + security catalog) that stays warm across
    reconfiguration requests (doc/SERVER.md).

    What stays resident between requests:
    {ul
    {- the {!Hydra.Analysis.system} with its per-core workload cache —
       RT arrivals/departures invalidate only the affected core's
       cached columns ({!Hydra.Analysis.refresh_rt_cores});}
    {- the all-bounds WCRT vector of the last successful selection,
       used as [warm0] floors for the next one whenever every edit
       since kept them sound (interference monotone: arrivals
       preserve the floors, departures and repartitions drop them);}
    {- the last materialized {!Hydra.Period_selection.result}, served
       to [Query] without recomputation while no edit is pending.}}

    A tenant is {b not} domain-safe; the engine guarantees exactly one
    domain touches a tenant during a batch (tenants are sharded across
    workers by group). *)

type t

type 'a admission =
  | Admitted of 'a
  | Rejected of string
      (** admission control refused; tenant state unchanged *)
  | Invalid of string  (** malformed edit (bad spec, unknown name...) *)

val create :
  name:string -> cache_capacity:int -> cores:int ->
  rt:Protocol.rt_spec list -> sec:Protocol.sec_spec list -> t admission
(** Build a tenant from an [Init] request: rate-monotonic RT
    priorities, best-fit partitioning ([Rejected] if some RT task
    cannot be placed), fresh analysis system with the cache bounded to
    [cache_capacity] entries (0 = unbounded). *)

val name : t -> string

val rt_arrive : t -> Protocol.rt_spec -> unit admission
(** Admit one RT task: global RM priorities are rebuilt, the incoming
    task is placed best-fit on a core that stays TDA-feasible with it
    (existing placements frozen), and only that core's cached workload
    columns are refreshed. [Rejected] if no core admits it. Warm
    floors stay valid (interference only grew). *)

val rt_leave : t -> string -> unit admission
(** Remove an RT task by name: its core's columns are refreshed, warm
    floors are dropped (interference shrank). *)

val sec_arrive : t -> Protocol.sec_spec -> unit admission
(** Append a security task at the lowest security priority — existing
    tasks' hp sets are unchanged, so warm floors stay valid and the
    newcomer starts with no floor. *)

val sec_leave : t -> string -> unit admission
(** Remove a security task by name; ids/priorities renumber and warm
    floors are dropped. *)

val set_cores : t -> int -> unit admission
(** Change the core count: full repartition and a fresh system
    (structural delta — cache and warm floors discarded). [Rejected]
    if the RT set no longer partitions; state unchanged then. *)

val touch : t -> unit
(** Mark the tenant dirty so the next {!materialize} recomputes
    ([Reselect]). *)

val materialize :
  ?obs:Hydra_obs.t -> ?ctx:Hydra_obs.Trace_ctx.t -> incremental:bool -> t ->
  Hydra.Period_selection.result
(** The tenant's current period selection. [incremental:true] serves
    clean tenants from the cached last result and otherwise analyzes
    on the resident system — warm workload cache, [warm0] floors when
    every edit since kept them sound, and the previous periods as
    Algorithm 2 search hints. [incremental:false] is the stateless
    per-request baseline: {e every} call re-selects on a fresh system
    with an empty cache, no floors and no hints — what a daemon
    without resident tenants would pay per request. Both produce
    {b bit-identical} results (QCheck-gated in [test/test_server.ml]).
    Counts [server.select] and [server.select.warm] on [obs]. A traced
    request's [ctx] wraps the selection in a ["server.select"] child
    span ({!Hydra_obs.trace_span}). *)

val stats : t -> Protocol.stats
val selects : t -> int
val warm_selects : t -> int

val snapshot : t -> Rtsched.Task.taskset * int array
(** The current taskset (RM-prioritized RT + arrival-ordered security
    tasks) and per-task core assignment — what the differential test
    feeds to a cold oracle. *)
