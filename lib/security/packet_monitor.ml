type time = int

type protocol = Tcp | Udp | Icmp

type packet = {
  p_time : time;
  p_src : string;
  p_dst : string;
  p_sport : int;
  p_dport : int;
  p_proto : protocol;
  p_payload : string;
}

(* ------------------------------------------------------------------ *)
(* Capture ring *)

type capture = {
  capacity : int;
  mutable ring : packet list;  (* newest first, length <= capacity *)
  mutable ingested : int;
}

let create_capture ~capacity =
  if capacity < 1 then invalid_arg "Packet_monitor.create_capture";
  { capacity; ring = []; ingested = 0 }

let ingest c p =
  c.ingested <- c.ingested + 1;
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  c.ring <- take c.capacity (p :: c.ring)

let captured c = List.rev c.ring
let capture_count c = List.length c.ring
let total_ingested c = c.ingested

(* ------------------------------------------------------------------ *)
(* Traffic synthesis *)

let benign_hosts = [| "10.0.0.2"; "10.0.0.3"; "10.0.0.7"; "10.0.0.9" |]
let benign_services = [| (80, Tcp); (443, Tcp); (1883, Tcp); (123, Udp) |]

let benign_traffic rng ~now ~count =
  List.init count (fun i ->
      let src = benign_hosts.(Taskgen.Rng.int rng (Array.length benign_hosts)) in
      let dport, proto =
        benign_services.(Taskgen.Rng.int rng (Array.length benign_services))
      in
      { p_time = now + i; p_src = src; p_dst = "10.0.0.1";
        p_sport = 20000 + Taskgen.Rng.int rng 20000; p_dport = dport; p_proto = proto;
        p_payload = Printf.sprintf "telemetry seq=%d" i })

let port_scan ~src ~now ~ports =
  List.mapi
    (fun i dport ->
      { p_time = now + i; p_src = src; p_dst = "10.0.0.1"; p_sport = 54321;
        p_dport = dport; p_proto = Tcp; p_payload = "" })
    ports

let c2_beacon ~src ~now =
  { p_time = now; p_src = src; p_dst = "203.0.113.66"; p_sport = 44444;
    p_dport = 4444; p_proto = Tcp; p_payload = "BEACON|id=rover|cmd?" }

(* ------------------------------------------------------------------ *)
(* Inspection *)

type alert =
  | Blacklisted_port of packet
  | Signature_match of packet * string
  | Port_scan of string * int

let pp_alert ppf = function
  | Blacklisted_port p ->
      Format.fprintf ppf "blacklisted-port:%d from %s" p.p_dport p.p_src
  | Signature_match (p, s) ->
      Format.fprintf ppf "signature:%S from %s" s p.p_src
  | Port_scan (src, n) ->
      Format.fprintf ppf "port-scan: %s touched %d ports" src n

type rules = {
  blacklisted_ports : int list;
  signatures : string list;
  scan_threshold : int;
}

let default_rules =
  { blacklisted_ports = [ 4444; 6667; 31337 ];
    signatures = [ "BEACON|"; "<shellcode-payload>" ];
    scan_threshold = 8 }

type t = {
  cap : capture;
  rules : rules;
  n_regions : int;
}

let create cap rules ~n_regions =
  if n_regions < 1 then invalid_arg "Packet_monitor.create: n_regions < 1";
  if rules.scan_threshold < 2 then
    invalid_arg "Packet_monitor.create: scan_threshold < 2";
  { cap; rules; n_regions }

let n_regions t = t.n_regions

(* Slice [k] covers ring positions [k*cap/n, (k+1)*cap/n) of the
   oldest-first capture view — positions, not packet identity, so a
   slice's contents advance as traffic flows, like a real ring-buffer
   sniffer re-reading its window. *)
let region_packets t region =
  let lo = region * t.cap.capacity / t.n_regions in
  let hi = (region + 1) * t.cap.capacity / t.n_regions in
  List.filteri (fun i _ -> i >= lo && i < hi) (captured t.cap)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec scan i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  end

let packet_alerts rules p =
  let blacklist =
    if List.mem p.p_dport rules.blacklisted_ports then
      [ Blacklisted_port p ]
    else []
  in
  let signatures =
    List.filter_map
      (fun s ->
        if contains ~needle:s p.p_payload then Some (Signature_match (p, s))
        else None)
      rules.signatures
  in
  blacklist @ signatures

let scan_alerts rules packets =
  let by_src = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let ports =
        Option.value (Hashtbl.find_opt by_src p.p_src) ~default:[]
      in
      if not (List.mem p.p_dport ports) then
        Hashtbl.replace by_src p.p_src (p.p_dport :: ports))
    packets;
  (* [by_src] is folded in unspecified hash-bucket order; sort by
     source address so monitor output is deterministic (rule D3,
     doc/STATIC_ANALYSIS.md). *)
  Hashtbl.fold
    (fun src ports acc ->
      let n = List.length ports in
      if n >= rules.scan_threshold then Port_scan (src, n) :: acc else acc)
    by_src []
  |> List.sort (fun a b ->
         let src = function
           | Port_scan (s, _) -> s
           | Blacklisted_port p -> p.p_src
           | Signature_match (p, _) -> p.p_src
         in
         String.compare (src a) (src b))

let inspect_region t region =
  let packets = region_packets t region in
  List.concat_map (packet_alerts t.rules) packets @ scan_alerts t.rules packets

let inspect_all t =
  List.concat_map (inspect_region t) (List.init t.n_regions (fun r -> r))

let detection_target t ~injector =
  { Detection.n_regions = t.n_regions;
    check_region =
      (fun ~region ~started ~finished:_ ->
        Intrusion.apply_until injector started;
        inspect_region t region <> []) }
