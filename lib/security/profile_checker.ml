module type ITEM_STORE = sig
  type store

  val keys : store -> string list
  val fingerprint : store -> string -> int64
end

type violation =
  | Modified of string
  | Added of string
  | Removed of string

let violation_key = function Modified k | Added k | Removed k -> k

let pp_violation ppf = function
  | Modified k -> Format.fprintf ppf "modified:%s" k
  | Added k -> Format.fprintf ppf "added:%s" k
  | Removed k -> Format.fprintf ppf "removed:%s" k

module Make (S : ITEM_STORE) = struct
  type t = {
    store : S.store;
    n_regions : int;
    baseline : (string, int64) Hashtbl.t;
  }

  let region_of_key_raw n_regions key =
    Int64.to_int (Int64.rem (Int64.logand (Hash.fnv1a64 key) Int64.max_int)
                    (Int64.of_int n_regions))

  let snapshot store n_regions baseline =
    Hashtbl.reset baseline;
    List.iter
      (fun key -> Hashtbl.replace baseline key (S.fingerprint store key))
      (S.keys store);
    ignore n_regions

  let create store ~n_regions =
    if n_regions < 1 then invalid_arg "Profile_checker.create: n_regions < 1";
    let baseline = Hashtbl.create 64 in
    snapshot store n_regions baseline;
    { store; n_regions; baseline }

  let n_regions t = t.n_regions
  let region_of_key t key = region_of_key_raw t.n_regions key

  let check_region t region =
    let current =
      List.filter (fun k -> region_of_key t k = region) (S.keys t.store)
    in
    let seen = Hashtbl.create 16 in
    let live_violations =
      List.filter_map
        (fun key ->
          Hashtbl.replace seen key ();
          match Hashtbl.find_opt t.baseline key with
          | None -> Some (Added key)
          | Some fp ->
              if S.fingerprint t.store key <> fp then Some (Modified key)
              else None)
        current
    in
    let removed =
      (* Hash-bucket order is safe here: the concatenation below is
         sorted before it escapes (rule D3, doc/STATIC_ANALYSIS.md). *)
      (Hashtbl.fold
         (fun key _ acc ->
           if region_of_key t key = region && not (Hashtbl.mem seen key) then
             Removed key :: acc
           else acc)
         t.baseline [] [@lint.allow "D3"])
    in
    List.sort compare (live_violations @ removed)

  let check_all t =
    List.concat_map (check_region t) (List.init t.n_regions (fun r -> r))

  let rebaseline t = snapshot t.store t.n_regions t.baseline

  let accept t ~key =
    if List.mem key (S.keys t.store) then
      Hashtbl.replace t.baseline key (S.fingerprint t.store key)
    else Hashtbl.remove t.baseline key
end
