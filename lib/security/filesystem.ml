type path = string
type t = { files : (path, string) Hashtbl.t }

let create () = { files = Hashtbl.create 64 }

let add_file t path content = Hashtbl.replace t.files path content

let require t path =
  if not (Hashtbl.mem t.files path) then raise Not_found

let write t path content =
  require t path;
  Hashtbl.replace t.files path content

let append t path content =
  require t path;
  let old = Hashtbl.find t.files path in
  Hashtbl.replace t.files path (old ^ content)

let read t path = Hashtbl.find t.files path

let remove t path =
  require t path;
  Hashtbl.remove t.files path

let mem t path = Hashtbl.mem t.files path
let file_count t = Hashtbl.length t.files

(* The fold visits buckets in unspecified hash order; the adjacent
   sort keeps monitor output deterministic (rule D3). *)
let list_paths t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.files []
  |> List.sort String.compare

let total_bytes t =
  Hashtbl.fold (fun _ c acc -> acc + String.length c) t.files 0

(* Deterministic filler bytes so experiments are reproducible without
   threading an RNG through the filesystem. *)
let synth_content ~seed ~len =
  String.init len (fun i -> Char.chr ((seed * 131 + i * 7919) mod 256))

let populate_images t ~count ~bytes_per_file =
  for i = 0 to count - 1 do
    add_file t
      (Printf.sprintf "img_%04d.raw" i)
      (synth_content ~seed:i ~len:bytes_per_file)
  done
