(** Scan-progress tracking and detection-latency measurement.

    A security job of WCET [C] scans [n_regions] regions sequentially:
    region [k]'s inspection occupies the job's executed-tick window
    [\[k*C/n, (k+1)*C/n)]. Driven by the simulator's [on_execute]
    hook, the monitor maps every execution segment of the watched task
    onto region-inspection completions at exact wall-clock instants
    and invokes the checker for each completed region. This is how the
    paper's narrative — "if the IDS is interrupted, an adversary can
    hide in the already-checked part" — becomes measurable: a mutation
    that lands after its region was inspected in the current pass is
    only caught one full period later, so schemes that let the scanner
    run with fewer interruptions and shorter periods detect faster. *)

type time = int

type target = {
  n_regions : int;
  check_region : region:int -> started:time -> finished:time -> bool;
      (** invoked when the scanner finishes [region]'s slice; [started]
          / [finished] are the wall-clock bounds of the inspection;
          returns [true] when a violation is found *)
}

type t

val create : sim_id:int -> wcet:time -> target:target -> t
(** Monitor for the simulated task [sim_id] whose jobs have the given
    WCET. *)

val on_execute :
  t -> Sim.Engine.job -> core:int -> start:time -> stop:time -> unit
(** Feed this as (part of) the engine's [on_execute] hook. *)

val detection_time : t -> time option
(** Wall-clock instant of the first reported violation, if any. *)

val regions_checked : t -> int
(** Total region inspections completed so far (across passes). *)

val full_passes : t -> int
(** Completed full scans. *)

val checker_target :
  n_regions:int -> injector:Intrusion.t ->
  check:(int -> Profile_checker.violation list) -> target
(** Standard wiring: before inspecting a region, apply every intrusion
    scheduled at or before the inspection's {e start} (mutations
    landing mid-inspection are missed until the next pass), then run
    the real checker on that region. *)

val combine_hooks :
  (Sim.Engine.job -> core:int -> start:time -> stop:time -> unit) list ->
  Sim.Engine.job -> core:int -> start:time -> stop:time -> unit
(** Fan a single engine hook out to several monitors. *)

(** {1 Latency instrumentation}

    Feeds the observability histograms behind [--metrics-out] (metric
    catalog in doc/OBSERVABILITY.md). Both recorders are allocation-
    free no-ops when [obs] is [None], preserving the determinism
    contract: instrumented runs compute identical results. *)

val on_finish_latency :
  Hydra_obs.t option -> monitor_class:string -> sim_id:int ->
  Sim.Engine.job -> finish:time -> unit
(** An [on_finish] hook sampling the release-to-finish latency of
    every job of the monitor task [sim_id] into the
    [security.latency.<monitor_class>] histogram. Partially apply to
    the first three arguments to build the hook once (the metric name
    is precomputed; on [None] the returned hook does nothing). *)

val record_detection :
  Hydra_obs.t option -> monitor_class:string -> t -> attack_at:time -> unit
(** If the monitor has detected a violation, samples
    [detection_time - attack_at] into the
    [security.detection_latency.<monitor_class>] histogram — the
    quantity Fig. 5a plots. *)

val combine_finish_hooks :
  (Sim.Engine.job -> finish:time -> unit) list ->
  Sim.Engine.job -> finish:time -> unit
(** Fan a single [on_finish] hook out to several consumers. *)
