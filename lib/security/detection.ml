type time = int

type target = {
  n_regions : int;
  check_region : region:int -> started:time -> finished:time -> bool;
}

type t = {
  sim_id : int;
  wcet : time;
  target : target;
  mutable cur_seq : int;  (* job being tracked; -1 before the first *)
  mutable progress : time;  (* executed ticks of the current job *)
  mutable region : int;  (* next region to complete *)
  mutable region_started : time;  (* wall time its inspection began *)
  mutable detected : time option;
  mutable regions_checked : int;
  mutable full_passes : int;
}

let create ~sim_id ~wcet ~target =
  if target.n_regions < 1 then
    invalid_arg "Detection.create: n_regions < 1";
  if wcet < 1 then invalid_arg "Detection.create: wcet < 1";
  { sim_id; wcet; target; cur_seq = -1; progress = 0; region = 0;
    region_started = 0; detected = None; regions_checked = 0; full_passes = 0 }

(* Executed-progress boundary at which region [k]'s inspection
   completes: ceil-free proportional split with the last region pinned
   to the full WCET. *)
let boundary t k = (k + 1) * t.wcet / t.target.n_regions

let on_execute t (job : Sim.Engine.job) ~core:_ ~start ~stop =
  if job.Sim.Engine.j_task.Sim.Engine.st_id = t.sim_id then begin
    if job.Sim.Engine.j_seq <> t.cur_seq then begin
      (* A new job begins a fresh pass (an aborted predecessor simply
         leaves its pass incomplete). *)
      t.cur_seq <- job.Sim.Engine.j_seq;
      t.progress <- 0;
      t.region <- 0;
      t.region_started <- start
    end;
    let p0 = t.progress in
    let p1 = p0 + (stop - start) in
    let wall_of p = start + (p - p0) in
    while t.region < t.target.n_regions && boundary t t.region <= p1 do
      let finished = wall_of (boundary t t.region) in
      let hit =
        t.target.check_region ~region:t.region ~started:t.region_started
          ~finished
      in
      t.regions_checked <- t.regions_checked + 1;
      if hit && t.detected = None then t.detected <- Some finished;
      t.region <- t.region + 1;
      t.region_started <- finished;
      if t.region = t.target.n_regions then
        t.full_passes <- t.full_passes + 1
    done;
    t.progress <- p1
  end

let detection_time t = t.detected
let regions_checked t = t.regions_checked
let full_passes t = t.full_passes

let checker_target ~n_regions ~injector ~check =
  let check_region ~region ~started ~finished:_ =
    Intrusion.apply_until injector started;
    check region <> []
  in
  { n_regions; check_region }

let combine_hooks hooks job ~core ~start ~stop =
  List.iter (fun h -> h job ~core ~start ~stop) hooks

let on_finish_latency obs ~monitor_class ~sim_id =
  match obs with
  | None -> fun _job ~finish:_ -> ()
  | Some _ ->
      (* Metric name built once, outside the per-finish path. *)
      let metric = "security.latency." ^ monitor_class in
      fun (job : Sim.Engine.job) ~finish ->
        if job.Sim.Engine.j_task.Sim.Engine.st_id = sim_id then
          Hydra_obs.sample obs metric (finish - job.Sim.Engine.j_release)

let record_detection obs ~monitor_class t ~attack_at =
  match t.detected with
  | None -> ()
  | Some at ->
      Hydra_obs.sample obs
        ("security.detection_latency." ^ monitor_class)
        (at - attack_at)

let combine_finish_hooks hooks (job : Sim.Engine.job) ~finish =
  List.iter (fun h -> h job ~finish) hooks
