(* CI entry point for the naive-vs-fast simulator microbenchmark
   (Sim_record): runs it at the scale given by the BENCH_SIM_*
   environment knobs, writes BENCH_sim.json, prints the summary, and
   exits 1 if the fast engine disagrees with the naive oracle (the
   wall-clock gate itself lives in the CI job,
   .github/workflows/ci.yml, where jq inspects the JSON). *)

let () =
  let r = Sim_record.run () in
  Sim_record.write r;
  Sim_record.pp_summary Format.std_formatter r;
  Format.printf "wrote BENCH_sim.json@.";
  if not r.Sim_record.sr_results_match then begin
    Format.printf "ERROR: fast engine results differ from naive engine@.";
    exit 1
  end
