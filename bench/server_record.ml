(* Admission-control daemon load benchmark and its machine-readable
   record, BENCH_server.json (schema "hydra_c.bench_server/1"), run by
   bench/server_bench.exe (the CI gate). Companion of Sim_record on
   the server side; doc/SERVER.md explains the methodology.

   A deterministic seeded generator builds two request scripts over
   [tenants] resident systems (M = [cores], [rt] RT tasks and [sec]
   security tasks each at init):

   - "steady": arrivals, reselects and queries only — every edit
     preserves the warm floors (doc/SERVER.md), so the incremental
     engine stays on the warm path. This is the headline
     warm-vs-cold number the acceptance gate reads.
   - "churn": leaves and core-count changes mixed in — structural
     deltas that drop the floors and force cold fallbacks. Warm wins
     shrink here by design; the gate only requires speedup >= 1.

   Each mix is measured four ways on the in-process engine
   (no sockets — the protocol codecs run, the kernel does not):

   - warm lockstep: incremental engine, jobs = 1, one request per
     batch; per-request latency recorded into a Hydra_obs.Histogram
     (p50/p99/p999) and wall time kept best-of-[reps].
   - cold lockstep: the same stream with incremental = false — every
     materialization rebuilds the system from scratch and re-derives
     every workload column. warm_speedup = cold_wall / warm_wall.
   - batched, jobs = 1 and jobs = [jobs]: the stream split into
     [batch]-request batches, exercising coalescing and sharding.

   results_match is the conjunction of two byte-identities over the
   encoded response frames: warm lockstep = cold lockstep (the
   incremental engine agrees with the from-scratch baseline) and
   batched jobs=1 = batched jobs=[jobs] (sharding is deterministic).
   The two lockstep/batched pairs are not compared to each other:
   coalescing legitimately makes responses depend on the batch
   schedule.

     {
       "schema": "hydra_c.bench_server/1",
       "tenants": T, "cores": M, "rt_tasks": n, "sec_tasks": m,
       "requests": R, "seed": S, "jobs": J, "batch": B, "reps": K,
       "mixes": {
         "steady": { "requests", "selects", "warm_selects",
                     "warm_wall_ns", "cold_wall_ns", "warm_speedup",
                     "throughput_rps", "batched_wall_ns",
                     "batched_throughput_rps", "p50_ns", "p99_ns",
                     "p999_ns", "results_match" },
         "churn":  { ... }
       },
       "results_match": bool,   -- conjunction over the mixes
       "warm_speedup": float,   -- the steady mix (the headline)
       "warm_speedup_min": float -- min over the mixes
     }

   Scale knobs (environment variables):
     BENCH_SERVER_TENANTS   resident systems (default 6)
     BENCH_SERVER_CORES     cores per tenant (default 4)
     BENCH_SERVER_RT        RT tasks per tenant at init (default 24)
     BENCH_SERVER_SEC       security tasks per tenant at init (default 8)
     BENCH_SERVER_REQUESTS  post-init requests per mix (default 300)
     BENCH_SERVER_SEED      script generator seed (default 42)
     BENCH_SERVER_JOBS      sharded-run worker count (default 4)
     BENCH_SERVER_BATCH     batched-run batch size (default 64)
     BENCH_SERVER_REPS      timed repetitions, best-of (default 3) *)

module Protocol = Hydra_server.Protocol
module Engine = Hydra_server.Engine
module Tenant = Hydra_server.Tenant

type mix = Steady | Churn

let mix_name = function Steady -> "steady" | Churn -> "churn"

type scale = {
  sc_tenants : int;
  sc_cores : int;
  sc_rt : int;
  sc_sec : int;
  sc_requests : int;
  sc_seed : int;
  sc_jobs : int;
  sc_batch : int;
  sc_reps : int;
}

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let scale_of_env () =
  { sc_tenants = getenv_int "BENCH_SERVER_TENANTS" 6;
    sc_cores = getenv_int "BENCH_SERVER_CORES" 4;
    sc_rt = getenv_int "BENCH_SERVER_RT" 24;
    sc_sec = getenv_int "BENCH_SERVER_SEC" 8;
    sc_requests = getenv_int "BENCH_SERVER_REQUESTS" 300;
    sc_seed = getenv_int "BENCH_SERVER_SEED" 42;
    sc_jobs = getenv_int "BENCH_SERVER_JOBS" 4;
    sc_batch = getenv_int "BENCH_SERVER_BATCH" 64;
    sc_reps = getenv_int "BENCH_SERVER_REPS" 3 }

(* Script generation: a self-contained 64-bit LCG so the request
   stream is a pure function of (mix, scale) — server_bench --drive
   regenerates the same prefix to talk to a live daemon, and the
   committed serve-smoke fixture depends on it. *)

let lcg s = ((s * 1103515245) + 12345) land 0x3FFF_FFFF

let rand r n =
  r := lcg !r;
  !r / 7 mod n

type tstate = {
  mutable fresh : int;  (* next fresh task-name number, shared rt/sec *)
  mutable live_rt : string list;
  mutable live_sec : string list;
}

let rt_periods = [| 100; 120; 150; 200; 240; 300; 400; 500; 600; 800 |]

(* Init tasksets are deliberately light (per-task utilization <= 3%):
   admissions should mostly succeed so the script keeps exercising
   selection, not the cheap rejection path. *)
let init_request r ~(scale : scale) ~id ~tenant ts =
  let rt =
    List.init scale.sc_rt (fun i ->
        { Protocol.r_name = Printf.sprintf "r%d" i;
          r_wcet = 1 + rand r 3;
          r_period = rt_periods.(rand r (Array.length rt_periods)) })
  in
  let sec =
    List.init scale.sc_sec (fun i ->
        { Protocol.s_name = Printf.sprintf "s%d" i;
          s_wcet = 1 + rand r 2;
          s_period_max = 2000 + (400 * rand r 10) })
  in
  ts.fresh <- max scale.sc_rt scale.sc_sec;
  ts.live_rt <- List.map (fun (t : Protocol.rt_spec) -> t.r_name) rt;
  ts.live_sec <- List.map (fun (s : Protocol.sec_spec) -> s.s_name) sec;
  { Protocol.q_id = id; q_tenant = tenant;
    q_op = Protocol.Init { cores = scale.sc_cores; rt; sec } }

let fresh_rt r ts =
  let name = Printf.sprintf "r%d" ts.fresh in
  ts.fresh <- ts.fresh + 1;
  ts.live_rt <- name :: ts.live_rt;
  { Protocol.r_name = name; r_wcet = 1; r_period = 200 + (20 * rand r 20) }

let fresh_sec r ts =
  let name = Printf.sprintf "s%d" ts.fresh in
  ts.fresh <- ts.fresh + 1;
  ts.live_sec <- name :: ts.live_sec;
  { Protocol.s_name = name; s_wcet = 1;
    s_period_max = 2000 + (400 * rand r 10) }

let pick_remove r l =
  let i = rand r (List.length l) in
  (List.nth l i, List.filteri (fun j _ -> j <> i) l)

(* Steady: every op preserves the warm floors (arrivals grow
   interference; reselect/query edit nothing). Most requests either
   re-confirm a selection the solution barely moved from or just read
   it back — the monitoring steady state the warm path is built for
   (the stateless baseline re-selects even for reads). *)
let steady_op r ts =
  let roll = rand r 100 in
  if roll < 15 then Protocol.Sec_arrive (fresh_sec r ts)
  else if roll < 30 then Protocol.Rt_arrive (fresh_rt r ts)
  else if roll < 70 then Protocol.Reselect
  else Protocol.Query

(* Churn: leaves and set_cores drop the floors, forcing cold-path
   selections inside the incremental engine. *)
let churn_op r ts =
  let roll = rand r 100 in
  if roll < 15 then Protocol.Rt_arrive (fresh_rt r ts)
  else if roll < 30 then
    if List.length ts.live_rt > 2 then begin
      let name, rest = pick_remove r ts.live_rt in
      ts.live_rt <- rest;
      Protocol.Rt_leave name
    end
    else Protocol.Query
  else if roll < 45 then Protocol.Sec_arrive (fresh_sec r ts)
  else if roll < 60 then
    if List.length ts.live_sec > 2 then begin
      let name, rest = pick_remove r ts.live_sec in
      ts.live_sec <- rest;
      Protocol.Sec_leave name
    end
    else Protocol.Query
  else if roll < 68 then Protocol.Set_cores (2 + rand r 3)
  else if roll < 90 then Protocol.Reselect
  else Protocol.Query

let tenant_names scale = List.init scale.sc_tenants (Printf.sprintf "t%d")

let script ~mix ~scale =
  let r =
    ref (lcg (scale.sc_seed + (match mix with Steady -> 1 | Churn -> 2)))
  in
  let tenants = Array.of_list (tenant_names scale) in
  let states =
    Array.map (fun _ -> { fresh = 0; live_rt = []; live_sec = [] }) tenants
  in
  let reqs = ref [] and id = ref 0 in
  Array.iteri
    (fun i tenant ->
      reqs := init_request r ~scale ~id:!id ~tenant states.(i) :: !reqs;
      incr id)
    tenants;
  let rounds = max 1 (scale.sc_requests / max 1 scale.sc_tenants) in
  for _ = 1 to rounds do
    Array.iteri
      (fun i tenant ->
        let op =
          match mix with
          | Steady -> steady_op r states.(i)
          | Churn -> churn_op r states.(i)
        in
        reqs := { Protocol.q_id = !id; q_tenant = tenant; q_op = op } :: !reqs;
        incr id)
      tenants
  done;
  List.rev !reqs

(* One pass of a script through an in-process engine. *)

type run = {
  run_wall_ns : int;
  run_wire : string list;  (* encoded responses, request order *)
  run_selects : int;
  run_warm_selects : int;
}

let chunks n l =
  let rec take k acc = function
    | tl when k = 0 -> (List.rev acc, tl)
    | [] -> (List.rev acc, [])
    | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go acc = function
    | [] -> List.rev acc
    | l ->
        let batch, rest = take n [] l in
        go (batch :: acc) rest
  in
  go [] l

let run_stream ?latency ?flight ~jobs ~incremental ~batch ~tenants reqs =
  let eng = Engine.create ~jobs ~incremental () in
  Fun.protect ~finally:(fun () -> Engine.shutdown eng) @@ fun () ->
  let wire = ref [] in
  let t0 = Hydra_obs.now_ns () in
  List.iter
    (fun b ->
      let t1 = Hydra_obs.now_ns () in
      let resps = Engine.exec_batch ?flight eng b in
      (match latency with
      | Some h -> Hydra_obs.Histogram.record h (Hydra_obs.now_ns () - t1)
      | None -> ());
      wire := List.rev_append (List.map Protocol.encode_response resps) !wire)
    (chunks batch reqs);
  let wall = Hydra_obs.now_ns () - t0 in
  let selects, warm_selects =
    List.fold_left
      (fun (s, w) name ->
        match Engine.find_tenant eng name with
        | Some tn -> (s + Tenant.selects tn, w + Tenant.warm_selects tn)
        | None -> (s, w))
      (0, 0) tenants
  in
  { run_wall_ns = wall; run_wire = List.rev !wire;
    run_selects = selects; run_warm_selects = warm_selects }

type mix_row = {
  mr_name : string;
  mr_requests : int;
  mr_selects : int;  (* materialized selections, warm lockstep run *)
  mr_warm_selects : int;  (* of those, warm-started *)
  mr_warm_wall_ns : int;
  mr_cold_wall_ns : int;
  mr_warm_speedup : float;
  mr_throughput_rps : float;  (* warm lockstep requests per second *)
  mr_batched_wall_ns : int;  (* batched run at [sc_jobs] workers *)
  mr_batched_throughput_rps : float;
  mr_p50_ns : int;
  mr_p99_ns : int;
  mr_p999_ns : int;
  mr_flight_wall_ns : int;  (* warm lockstep with a flight recorder attached *)
  mr_overhead : float;  (* best per-rep flight/warm ratio - 1 (can be < 0) *)
  mr_results_match : bool;
}

let rps requests wall_ns =
  if wall_ns > 0 then float_of_int requests /. (float_of_int wall_ns /. 1e9)
  else Float.nan

let measure ~mix ~scale =
  let reqs = script ~mix ~scale in
  let n = List.length reqs in
  let tenants = tenant_names scale in
  let hist = Hydra_obs.Histogram.create () in
  (* Warm and cold lockstep passes alternate and each keeps its
     best-of-reps wall time (both are deterministic, so reps only
     filter machine noise); the latency histogram is filled once, on
     the first warm pass. *)
  let warm_ns = ref max_int and cold_ns = ref max_int in
  let flight_ns = ref max_int and flight_ratio = ref Float.infinity in
  let warm = ref None and cold = ref None in
  for rep = 1 to max 1 scale.sc_reps do
    let latency = if rep = 1 then Some hist else None in
    let w = run_stream ?latency ~jobs:1 ~incremental:true ~batch:1 ~tenants reqs in
    (* the same warm pass with the always-on flight recorder attached,
       run back to back with its bare twin: the overhead gate keeps the
       best per-rep flight/warm ratio, because adjacent passes share
       machine state and the ratio cancels drift that independent
       best-of walls do not (a lucky bare minimum paired with an
       unlucky flight minimum reads as phantom overhead) *)
    let f =
      run_stream ~flight:(Hydra_obs.Flight.create ()) ~jobs:1
        ~incremental:true ~batch:1 ~tenants reqs
    in
    let c = run_stream ~jobs:1 ~incremental:false ~batch:1 ~tenants reqs in
    if w.run_wall_ns < !warm_ns then warm_ns := w.run_wall_ns;
    if c.run_wall_ns < !cold_ns then cold_ns := c.run_wall_ns;
    if f.run_wall_ns < !flight_ns then flight_ns := f.run_wall_ns;
    if w.run_wall_ns > 0 then
      flight_ratio :=
        Float.min !flight_ratio
          (float_of_int f.run_wall_ns /. float_of_int w.run_wall_ns);
    warm := Some w;
    cold := Some c
  done;
  let w = Option.get !warm and c = Option.get !cold in
  let b1 =
    run_stream ~jobs:1 ~incremental:true ~batch:scale.sc_batch ~tenants reqs
  in
  let bj =
    run_stream ~jobs:scale.sc_jobs ~incremental:true ~batch:scale.sc_batch
      ~tenants reqs
  in
  let q p = Hydra_obs.Histogram.quantile hist p in
  { mr_name = mix_name mix;
    mr_requests = n;
    mr_selects = w.run_selects;
    mr_warm_selects = w.run_warm_selects;
    mr_warm_wall_ns = !warm_ns;
    mr_cold_wall_ns = !cold_ns;
    mr_warm_speedup =
      (if !warm_ns > 0 then float_of_int !cold_ns /. float_of_int !warm_ns
       else Float.nan);
    mr_throughput_rps = rps n !warm_ns;
    mr_batched_wall_ns = bj.run_wall_ns;
    mr_batched_throughput_rps = rps n bj.run_wall_ns;
    mr_p50_ns = q 0.5;
    mr_p99_ns = q 0.99;
    mr_p999_ns = q 0.999;
    mr_flight_wall_ns = !flight_ns;
    mr_overhead =
      (if Float.is_finite !flight_ratio then !flight_ratio -. 1.0
       else Float.nan);
    mr_results_match = w.run_wire = c.run_wire && b1.run_wire = bj.run_wire }

(* Socket round trip: the steady script driven in lockstep over a
   Unix-domain socket against a real in-process daemon, measuring
   client-observed latency against the server's own [server.latency]
   histogram — scraped live with one [obs_snapshot] request, which by
   design leaves no footprint in the registry it reads. The skew per
   percentile ((client - server) / server) is the framing/syscall tax
   of the wire, invisible to the in-process engine numbers above. *)

type drive_row = {
  dr_requests : int;
  dr_client_p50_ns : int;
  dr_client_p99_ns : int;
  dr_server_p50_ns : int;  (* server.latency, scraped live *)
  dr_server_p99_ns : int;
  dr_skew_p50 : float;
  dr_skew_p99 : float;
}

(* The daemon may still be binding its socket when the client starts;
   retry briefly instead of failing on the race. *)
let connect_retry path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go attempts =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        Unix.sleepf 0.1;
        go (attempts - 1)
  in
  go 50

let roundtrip fd q =
  Protocol.write_frame fd (Protocol.encode_request q);
  match Protocol.read_frame fd with
  | Some payload -> payload
  | None -> failwith "server_record: daemon closed the connection mid-drive"

let measure_drive ~scale =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hydra_bench_%d.sock" (Unix.getpid ()))
  in
  (* server.latency records only under profiling *)
  let obs = Hydra_obs.create () in
  Hydra_obs.enable_profiling obs;
  let config =
    { (Hydra_server.Daemon.default_config ~socket_path:socket) with jobs = 1 }
  in
  let server =
    Domain.spawn (fun () -> Hydra_server.Daemon.serve ~obs ~config ())
  in
  let reqs = script ~mix:Steady ~scale in
  let hist = Hydra_obs.Histogram.create () in
  let server_snap = ref None in
  let fd = connect_retry socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun q ->
          let t0 = Hydra_obs.now_ns () in
          ignore (roundtrip fd q);
          Hydra_obs.Histogram.record hist (Hydra_obs.now_ns () - t0))
        reqs;
      (* live scrape, then shutdown, all on the same connection *)
      let payload =
        roundtrip fd
          { Protocol.q_id = 0; q_tenant = ""; q_op = Protocol.Obs_snapshot }
      in
      (match (Protocol.decode_response payload).p_body with
      | Protocol.Metrics doc ->
          server_snap := Some (Hydra_obs.Report.of_string doc)
      | _ -> ());
      ignore
        (roundtrip fd
           { Protocol.q_id = 1; q_tenant = ""; q_op = Protocol.Shutdown }));
  Domain.join server;
  let client_q p = Hydra_obs.Histogram.quantile hist p in
  let server_q p =
    match !server_snap with
    | None -> 0
    | Some snap -> (
        match List.assoc_opt "server.latency" snap.Hydra_obs.Report.hists with
        | Some h -> Hydra_obs.Report.quantile h p
        | None -> 0)
  in
  let skew c s =
    if s > 0 then (float_of_int c /. float_of_int s) -. 1.0 else Float.nan
  in
  let c50 = client_q 0.5 and c99 = client_q 0.99 in
  let s50 = server_q 0.5 and s99 = server_q 0.99 in
  { dr_requests = List.length reqs;
    dr_client_p50_ns = c50;
    dr_client_p99_ns = c99;
    dr_server_p50_ns = s50;
    dr_server_p99_ns = s99;
    dr_skew_p50 = skew c50 s50;
    dr_skew_p99 = skew c99 s99 }

type t = {
  br_scale : scale;
  br_rows : mix_row list;
  br_drive : drive_row;
  br_results_match : bool;
  br_warm_speedup : float;  (* the steady mix *)
  br_warm_speedup_min : float;  (* min over the mixes *)
  br_overhead : float;  (* steady-mix flight-recorder overhead *)
}

let run () =
  let scale = scale_of_env () in
  let rows = [ measure ~mix:Steady ~scale; measure ~mix:Churn ~scale ] in
  { br_scale = scale;
    br_rows = rows;
    br_drive = measure_drive ~scale;
    br_results_match = List.for_all (fun r -> r.mr_results_match) rows;
    br_warm_speedup = (List.hd rows).mr_warm_speedup;
    br_warm_speedup_min =
      List.fold_left
        (fun acc r -> Float.min acc r.mr_warm_speedup)
        Float.infinity rows;
    br_overhead = (List.hd rows).mr_overhead }

let to_json (r : t) =
  let s = r.br_scale in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"hydra_c.bench_server/1\",\n";
  Printf.bprintf buf "  \"tenants\": %d,\n" s.sc_tenants;
  Printf.bprintf buf "  \"cores\": %d,\n" s.sc_cores;
  Printf.bprintf buf "  \"rt_tasks\": %d,\n" s.sc_rt;
  Printf.bprintf buf "  \"sec_tasks\": %d,\n" s.sc_sec;
  Printf.bprintf buf "  \"requests\": %d,\n" s.sc_requests;
  Printf.bprintf buf "  \"seed\": %d,\n" s.sc_seed;
  Printf.bprintf buf "  \"jobs\": %d,\n" s.sc_jobs;
  Printf.bprintf buf "  \"batch\": %d,\n" s.sc_batch;
  Printf.bprintf buf "  \"reps\": %d,\n" s.sc_reps;
  Buffer.add_string buf "  \"mixes\": {";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n    \"%s\": { \"requests\": %d, \"selects\": %d, \
         \"warm_selects\": %d, \"warm_wall_ns\": %d, \"cold_wall_ns\": %d, \
         \"warm_speedup\": %.4f, \"throughput_rps\": %s, \
         \"batched_wall_ns\": %d, \"batched_throughput_rps\": %s, \
         \"p50_ns\": %d, \"p99_ns\": %d, \"p999_ns\": %d, \
         \"flight_wall_ns\": %d, \"overhead\": %s, \
         \"results_match\": %b }"
        row.mr_name row.mr_requests row.mr_selects row.mr_warm_selects
        row.mr_warm_wall_ns row.mr_cold_wall_ns row.mr_warm_speedup
        (Hydra_obs.Snapshot.json_float row.mr_throughput_rps)
        row.mr_batched_wall_ns
        (Hydra_obs.Snapshot.json_float row.mr_batched_throughput_rps)
        row.mr_p50_ns row.mr_p99_ns row.mr_p999_ns row.mr_flight_wall_ns
        (Hydra_obs.Snapshot.json_float row.mr_overhead)
        row.mr_results_match)
    r.br_rows;
  Buffer.add_string buf "\n  },\n";
  let d = r.br_drive in
  Printf.bprintf buf
    "  \"drive\": { \"requests\": %d, \"client_p50_ns\": %d, \
     \"client_p99_ns\": %d, \"server_p50_ns\": %d, \"server_p99_ns\": %d, \
     \"skew_p50\": %s, \"skew_p99\": %s },\n"
    d.dr_requests d.dr_client_p50_ns d.dr_client_p99_ns d.dr_server_p50_ns
    d.dr_server_p99_ns
    (Hydra_obs.Snapshot.json_float d.dr_skew_p50)
    (Hydra_obs.Snapshot.json_float d.dr_skew_p99);
  Printf.bprintf buf "  \"results_match\": %b,\n" r.br_results_match;
  Printf.bprintf buf "  \"warm_speedup\": %s,\n"
    (Hydra_obs.Snapshot.json_float r.br_warm_speedup);
  Printf.bprintf buf "  \"warm_speedup_min\": %s,\n"
    (Hydra_obs.Snapshot.json_float r.br_warm_speedup_min);
  Printf.bprintf buf "  \"overhead\": %s\n"
    (Hydra_obs.Snapshot.json_float r.br_overhead);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ?(path = "BENCH_server.json") r =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json r))

let pp_summary ppf (r : t) =
  let s = r.br_scale in
  Format.fprintf ppf
    "admission-control daemon (%d tenants, M=%d, %d RT + %d sec tasks \
     each, %d requests/mix, seed %d):@."
    s.sc_tenants s.sc_cores s.sc_rt s.sc_sec s.sc_requests s.sc_seed;
  List.iter
    (fun row ->
      Format.fprintf ppf
        "  %-7s cold %8.2f ms   warm %8.2f ms   speedup %5.2fx   p99 %6.2f \
         us   %s@."
        row.mr_name
        (float_of_int row.mr_cold_wall_ns /. 1e6)
        (float_of_int row.mr_warm_wall_ns /. 1e6)
        row.mr_warm_speedup
        (float_of_int row.mr_p99_ns /. 1e3)
        (if row.mr_results_match then "results match" else "RESULTS DIFFER"))
    r.br_rows;
  let d = r.br_drive in
  Format.fprintf ppf
    "  drive   client p50 %8.2f us  p99 %8.2f us   server p50 %8.2f us  \
     p99 %8.2f us   skew p99 %+.0f%%@."
    (float_of_int d.dr_client_p50_ns /. 1e3)
    (float_of_int d.dr_client_p99_ns /. 1e3)
    (float_of_int d.dr_server_p50_ns /. 1e3)
    (float_of_int d.dr_server_p99_ns /. 1e3)
    (d.dr_skew_p99 *. 100.0);
  Format.fprintf ppf "  flight recorder overhead (steady, lockstep): %+.2f%%@."
    (r.br_overhead *. 100.0)
