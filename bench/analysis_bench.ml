(* CI entry point for the naive-vs-fast analysis microbenchmark
   (Analysis_record): runs it at the scale given by the
   BENCH_ANALYSIS_* environment knobs, writes BENCH_analysis.json,
   prints the summary, and exits 1 if the fast path disagrees with the
   reference path (the wall-clock gate itself lives in the CI job,
   .github/workflows/ci.yml, where jq inspects the JSON). *)

let () =
  let r = Analysis_record.run () in
  Analysis_record.write r;
  Analysis_record.pp_summary Format.std_formatter r;
  Format.printf "wrote BENCH_analysis.json@.";
  if not r.Analysis_record.br_results_match then begin
    Format.printf "ERROR: fast path results differ from naive path@.";
    exit 1
  end
