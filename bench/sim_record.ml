(* Naive-vs-fast simulator microbenchmark and its machine-readable
   record, BENCH_sim.json (schema "hydra_c.bench_sim/1"). Shared by
   bench/main.exe (full harness) and bench/sim_bench.exe (the CI
   gate). Companion of Analysis_record on the simulation side.

   Three workloads, each run through the naive stepper (~fast:false,
   --naive-sim) and the skip-ahead engine (~fast:true, the default;
   doc/SIMULATOR.md, which also explains the expected speedups):

   - "fig5_rover": the extended rover case study (all four Table-1
     monitor classes, n = 6, M = 2) under the HYDRA-C semi-partitioned
     policy at the designers' period bounds, simulated over the Fig. 5
     horizon, [trials] times. Both engines are event-skipping, so at
     this scale the win is constant-factor only (~2.5-3x).
   - "validation_m4": the Table-3 validation workload, byte-for-byte
     what Experiments.Validation.run simulates — generated tasksets on
     an M=4 platform cycling through all utilization groups, one
     hook-free simulation each at the validation horizon (100 000
     ticks).
   - "campaign_m16": the asymptotic regime — dense high-utilization
     tasksets (groups 7-9) on an M=16 platform (n ~ 100-200 tasks),
     simulated over the Fig. 5 horizon. Here the naive engine's O(n)
     per-event release scan and ready-list sort dominate and the
     skip-ahead engine's bitset walk pulls >= 5x ahead.

   Hook-free runs are timed; equivalence is checked two ways on the
   side: Sim.Metrics.equal_stats over every timed pair of runs, and an
   event-by-event Sim.Event_log comparison (first_divergence) on one
   instrumented run per workload. results_match is the conjunction.

     {
       "schema": "hydra_c.bench_sim/1",
       "trials": T, "horizon": H, "tasksets": N, "n_cores": M, "seed": S,
       "workloads": {
         "fig5_rover":    { "n_tasks", "n_cores", "horizon", "runs",
                            "naive_wall_ns", "fast_wall_ns", "speedup",
                            "decision_events", "events_per_sec_fast",
                            "events_checked", "results_match" },
         "validation_m4": { ... },
         "campaign_m16":  { ... }
       },
       "results_match": bool,      -- conjunction over the workloads
       "speedup_min": float        -- min over the workloads
     }

   Wall times are best-of-[reps] over interleaved naive/fast batches
   (both engines are deterministic, so reps only filter machine
   noise — interleaving cancels clock-frequency drift).

   Scale knobs (environment variables):
     BENCH_SIM_TRIALS    rover simulations timed (default 60)
     BENCH_SIM_HORIZON   rover/campaign horizon, ticks (default 45000)
     BENCH_SIM_TASKSETS  validation tasksets (default 6)
     BENCH_SIM_CORES     validation platform size M (default 4)
     BENCH_SIM_CAMPAIGN_CORES      campaign platform size (default 16)
     BENCH_SIM_CAMPAIGN_TASKSETS   campaign tasksets (default 3)
     BENCH_SIM_SEED      generator seed (default 42)
     BENCH_SIM_REPS      timed repetitions, best-of (default 5) *)

module Task = Rtsched.Task

type workload_row = {
  wr_name : string;
  wr_n_tasks : int;
  wr_n_cores : int;
  wr_horizon : int;
  wr_runs : int;
  wr_naive_wall_ns : int;
  wr_fast_wall_ns : int;
  wr_speedup : float;
  wr_decision_events : int;  (* total over the timed fast runs *)
  wr_events_checked : int;  (* schedule events compared one by one *)
  wr_results_match : bool;
}

type t = {
  sr_trials : int;
  sr_horizon : int;
  sr_tasksets : int;
  sr_n_cores : int;
  sr_seed : int;
  sr_rows : workload_row list;
  sr_results_match : bool;
  sr_speedup_min : float;
}

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

(* One simulation instance: a task list with its platform size. *)
type instance = { in_tasks : Sim.Engine.sim_task list; in_n_cores : int }

let sec_period_bounds ts =
  let bounds = Array.make (Array.length ts.Task.sec) 0 in
  Array.iter (fun s -> bounds.(s.Task.sec_id) <- s.Task.sec_period_max) ts.Task.sec;
  bounds

let rover_instance () =
  let ts = Security.Rover.extended_taskset () in
  let built =
    Sim.Scenario.of_taskset ts
      ~rt_assignment:(Security.Rover.rt_assignment ())
      ~policy:Sim.Policy.Semi_partitioned
      ~sec_periods:(sec_period_bounds ts) ()
  in
  { in_tasks = built.Sim.Scenario.tasks; in_n_cores = ts.Task.n_cores }

(* [group_of count] picks the utilization group of the [count]-th
   generated taskset; Validation.run cycles all groups, the campaign
   workload sticks to the dense top of the range. *)
let synthetic_instances ~n ~n_cores ~group_of ~seed =
  let config = Taskgen.Generator.default_config ~n_cores in
  let streams = Taskgen.Rng.split_n (Taskgen.Rng.create seed) (n * 16) in
  let rec go acc i count =
    if count >= n || i >= Array.length streams then List.rev acc
    else
      let group = group_of count mod config.Taskgen.Generator.util_groups in
      match Taskgen.Generator.generate config streams.(i) ~group with
      | Some g ->
          let ts = g.Taskgen.Generator.taskset in
          let built =
            Sim.Scenario.of_taskset ts
              ~rt_assignment:g.Taskgen.Generator.rt_assignment
              ~policy:Sim.Policy.Semi_partitioned
              ~sec_periods:(sec_period_bounds ts) ()
          in
          go ({ in_tasks = built.Sim.Scenario.tasks; in_n_cores = n_cores } :: acc)
            (i + 1) (count + 1)
      | None -> go acc (i + 1) count
  in
  go [] 0 0

let timed_runs ~fast ~horizon instances =
  let t0 = Hydra_obs.now_ns () in
  let stats =
    List.map
      (fun { in_tasks; in_n_cores } ->
        Sim.Engine.run ~fast ~n_cores:in_n_cores ~horizon in_tasks)
      instances
  in
  (Hydra_obs.now_ns () - t0, stats)

(* Event-by-event equivalence on one instrumented run (hooks + trace
   change the wall clock, so this runs outside the timed section). *)
let events_agree ~horizon { in_tasks; in_n_cores } =
  let capture fast =
    let log = Sim.Event_log.create ~n_cores:in_n_cores in
    let stats =
      Sim.Engine.run ~fast ~hooks:(Sim.Event_log.hooks log)
        ~collect_trace:true ~n_cores:in_n_cores ~horizon in_tasks
    in
    (stats, Sim.Event_log.events log)
  in
  let fast_stats, fast_events = capture true in
  let naive_stats, naive_events = capture false in
  let ok =
    Sim.Event_log.first_divergence fast_events naive_events = None
    && Sim.Metrics.equal_stats fast_stats naive_stats
  in
  (ok, List.length fast_events)

let measure ~name ~horizon ~reps instances =
  let runs = List.length instances in
  (* Naive and fast batches alternate and each keeps its best-of-reps
     wall time: interleaving cancels clock-frequency drift between the
     two measurements, best-of filters scheduler noise (both engines
     are deterministic, so every rep computes identical results). *)
  let naive_ns = ref max_int and fast_ns = ref max_int in
  let naive_stats = ref [] and fast_stats = ref [] in
  for _ = 1 to max 1 reps do
    let ns, nst = timed_runs ~fast:false ~horizon instances in
    let fs, fst = timed_runs ~fast:true ~horizon instances in
    if ns < !naive_ns then naive_ns := ns;
    if fs < !fast_ns then fast_ns := fs;
    naive_stats := nst;
    fast_stats := fst
  done;
  let naive_ns = !naive_ns and fast_ns = !fast_ns in
  let naive_stats = !naive_stats and fast_stats = !fast_stats in
  let stats_ok =
    List.for_all2 Sim.Metrics.equal_stats naive_stats fast_stats
  in
  let events_ok, events_checked =
    match instances with
    | [] -> (true, 0)
    | inst :: _ -> events_agree ~horizon inst
  in
  let decision_events =
    List.fold_left
      (fun acc (s : Sim.Engine.stats) -> acc + s.decision_events)
      0 fast_stats
  in
  { wr_name = name;
    wr_n_tasks =
      (match instances with [] -> 0 | i :: _ -> List.length i.in_tasks);
    wr_n_cores = (match instances with [] -> 0 | i :: _ -> i.in_n_cores);
    wr_horizon = horizon;
    wr_runs = runs;
    wr_naive_wall_ns = naive_ns;
    wr_fast_wall_ns = fast_ns;
    wr_speedup =
      (if fast_ns > 0 then float_of_int naive_ns /. float_of_int fast_ns
       else Float.nan);
    wr_decision_events = decision_events;
    wr_events_checked = events_checked;
    wr_results_match = stats_ok && events_ok }

let replicate n x = List.init n (fun _ -> x)

let run () =
  let trials = getenv_int "BENCH_SIM_TRIALS" 60 in
  let horizon = getenv_int "BENCH_SIM_HORIZON" 45000 in
  let tasksets = getenv_int "BENCH_SIM_TASKSETS" 6 in
  let n_cores = getenv_int "BENCH_SIM_CORES" 4 in
  let campaign_cores = getenv_int "BENCH_SIM_CAMPAIGN_CORES" 16 in
  let campaign_tasksets = getenv_int "BENCH_SIM_CAMPAIGN_TASKSETS" 3 in
  let seed = getenv_int "BENCH_SIM_SEED" 42 in
  let reps = getenv_int "BENCH_SIM_REPS" 5 in
  let rover = rover_instance () in
  let validation =
    (* Mirrors Experiments.Validation.run: group = index mod util_groups,
       horizon 100 000 ticks (its default), hook-free runs. *)
    synthetic_instances ~n:tasksets ~n_cores ~group_of:(fun c -> c) ~seed
  in
  let campaign =
    synthetic_instances ~n:campaign_tasksets ~n_cores:campaign_cores
      ~group_of:(fun c -> 7 + (c mod 3)) ~seed
  in
  let rows =
    [ measure ~name:"fig5_rover" ~horizon ~reps (replicate trials rover);
      measure ~name:"validation_m4" ~horizon:100_000 ~reps validation;
      measure ~name:"campaign_m16" ~horizon ~reps campaign ]
  in
  { sr_trials = trials;
    sr_horizon = horizon;
    sr_tasksets = List.length validation;
    sr_n_cores = n_cores;
    sr_seed = seed;
    sr_rows = rows;
    sr_results_match = List.for_all (fun r -> r.wr_results_match) rows;
    sr_speedup_min =
      List.fold_left (fun acc r -> Float.min acc r.wr_speedup) Float.infinity
        rows }

let to_json (r : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"hydra_c.bench_sim/1\",\n";
  Printf.bprintf buf "  \"trials\": %d,\n" r.sr_trials;
  Printf.bprintf buf "  \"horizon\": %d,\n" r.sr_horizon;
  Printf.bprintf buf "  \"tasksets\": %d,\n" r.sr_tasksets;
  Printf.bprintf buf "  \"n_cores\": %d,\n" r.sr_n_cores;
  Printf.bprintf buf "  \"seed\": %d,\n" r.sr_seed;
  Buffer.add_string buf "  \"workloads\": {";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      let events_per_sec =
        if row.wr_fast_wall_ns > 0 then
          float_of_int row.wr_decision_events
          /. (float_of_int row.wr_fast_wall_ns /. 1e9)
        else Float.nan
      in
      Printf.bprintf buf
        "\n    \"%s\": { \"n_tasks\": %d, \"n_cores\": %d, \"horizon\": %d, \
         \"runs\": %d, \"naive_wall_ns\": %d, \"fast_wall_ns\": %d, \
         \"speedup\": %.4f, \"decision_events\": %d, \
         \"events_per_sec_fast\": %s, \"events_checked\": %d, \
         \"results_match\": %b }"
        row.wr_name row.wr_n_tasks row.wr_n_cores row.wr_horizon row.wr_runs
        row.wr_naive_wall_ns row.wr_fast_wall_ns row.wr_speedup
        row.wr_decision_events
        (Hydra_obs.Snapshot.json_float events_per_sec)
        row.wr_events_checked row.wr_results_match)
    r.sr_rows;
  Buffer.add_string buf "\n  },\n";
  Printf.bprintf buf "  \"results_match\": %b,\n" r.sr_results_match;
  Printf.bprintf buf "  \"speedup_min\": %s\n"
    (Hydra_obs.Snapshot.json_float r.sr_speedup_min);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ?(path = "BENCH_sim.json") r =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json r))

let pp_summary ppf (r : t) =
  Format.fprintf ppf
    "simulator fast path (%d rover trials, horizon %d; %d synthetic \
     tasksets, M=%d, seed %d):@."
    r.sr_trials r.sr_horizon r.sr_tasksets r.sr_n_cores r.sr_seed;
  List.iter
    (fun row ->
      Format.fprintf ppf
        "  %-13s naive %8.2f ms   fast %8.2f ms   speedup %5.2fx   %s@."
        row.wr_name
        (float_of_int row.wr_naive_wall_ns /. 1e6)
        (float_of_int row.wr_fast_wall_ns /. 1e6)
        row.wr_speedup
        (if row.wr_results_match then "results match" else "RESULTS DIFFER"))
    r.sr_rows
