(* CI entry point for the admission-control daemon benchmark
   (Server_record). Two modes:

   - no arguments: run the in-process load benchmark at the scale
     given by the BENCH_SERVER_* environment knobs, write
     BENCH_server.json, print the summary, and exit 1 if any
     byte-identity check failed (the wall-clock gates live in the CI
     job, .github/workflows/ci.yml, where jq inspects the JSON).

   - --drive SOCKET N [--no-shutdown]: act as a lockstep client
     against a live daemon (hydra_c serve): connect to the
     Unix-domain SOCKET, send the first N requests of the steady
     script one at a time — waiting for each response before the next
     request, so batching cannot coalesce and the transcript is
     reproducible — then a Shutdown (unless --no-shutdown, which
     leaves the daemon running so CI can scrape it live between
     drives; '--drive SOCKET 0' later sends just the Shutdown),
     printing every response payload on its own line. The CI
     serve-smoke step diffs this output against the committed
     test/server_fixtures/serve_smoke.expected. *)

module Protocol = Hydra_server.Protocol

let usage () =
  prerr_endline "usage: server_bench.exe [--drive SOCKET N [--no-shutdown]]";
  exit 2

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let drive socket n ~shutdown =
  let scale = Server_record.scale_of_env () in
  let reqs = take n (Server_record.script ~mix:Server_record.Steady ~scale) in
  let reqs =
    if shutdown then
      reqs
      @ [ { Protocol.q_id = List.length reqs; q_tenant = "_daemon";
            q_op = Protocol.Shutdown } ]
    else reqs
  in
  let fd = Server_record.connect_retry socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun r ->
          Protocol.write_frame fd (Protocol.encode_request r);
          match Protocol.read_frame fd with
          | Some payload -> print_endline payload
          | None ->
              prerr_endline "server_bench: connection closed mid-stream";
              exit 1)
        reqs)

let () =
  match Sys.argv with
  | [| _ |] ->
      let r = Server_record.run () in
      Server_record.write r;
      Server_record.pp_summary Format.std_formatter r;
      Format.printf "wrote BENCH_server.json@.";
      if not r.Server_record.br_results_match then begin
        Format.printf
          "ERROR: warm/sharded responses differ from the cold baseline@.";
        exit 1
      end
  | [| _; "--drive"; socket; n |] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> drive socket n ~shutdown:true
      | _ -> usage ())
  | [| _; "--drive"; socket; n; "--no-shutdown" |] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> drive socket n ~shutdown:false
      | _ -> usage ())
  | _ -> usage ()
