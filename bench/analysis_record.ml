(* Naive-vs-fast analysis microbenchmark and its machine-readable
   record, BENCH_analysis.json (schema "hydra_c.bench_analysis/1").
   Shared by bench/main.exe (full harness) and bench/analysis_bench.exe
   (the CI gate).

   The workload is HYDRA-C period selection (Algorithm 1 + 2 over the
   Eq. 6-8 WCRT analysis) on Table-3 tasksets with a boosted security
   count, run once per carry-in policy through the reference path
   (~fast:false) and once through the optimized path (~fast:true,
   doc/PERFORMANCE.md), on fresh systems each time. Results must be
   bit-identical; the wall-clock ratio is the reported speedup.

     {
       "schema": "hydra_c.bench_analysis/1",
       "tasksets": N, "n_cores": M, "seed": S,
       "policies": {
         "top_delta":  { "naive_wall_ns", "fast_wall_ns",
                         "speedup", "results_match" },
         "exhaustive": { ... }
       },
       "results_match": bool,      -- conjunction over the policies
       "counters": { name: total } -- Hydra_obs counters of the fast
                                      Exhaustive run: must include the
                                      analysis.cache.{hit,miss} and
                                      analysis.prune.* families
                                      (doc/OBSERVABILITY.md)
     }

   Scale knobs (environment variables):
     BENCH_ANALYSIS_TASKSETS  tasksets measured (default 10)
     BENCH_ANALYSIS_CORES     platform size M (default 4)
     BENCH_ANALYSIS_SEED      generator seed (default 42) *)

module Task = Rtsched.Task

type policy_row = {
  pr_name : string;
  pr_naive_wall_ns : int;
  pr_fast_wall_ns : int;
  pr_speedup : float;
  pr_results_match : bool;
}

type t = {
  br_tasksets : int;
  br_n_cores : int;
  br_seed : int;
  br_rows : policy_row list;
  br_results_match : bool;
  br_counters : Hydra_obs.counter_view list;
}

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

(* Mid-to-high utilization groups: low groups schedule trivially and
   underweight the binary search; the top groups mostly fail RT
   partitioning. *)
let gen_tasksets ~n ~n_cores ~seed =
  let config =
    { (Taskgen.Generator.default_config ~n_cores) with
      Taskgen.Generator.sec_count = (6, 9) }
  in
  let streams = Taskgen.Rng.split_n (Taskgen.Rng.create seed) (n * 16) in
  let rec go acc i count =
    if count >= n || i >= Array.length streams then List.rev acc
    else
      let group = 3 + (count mod 3) in
      match Taskgen.Generator.generate config streams.(i) ~group with
      | Some g -> go (g :: acc) (i + 1) (count + 1)
      | None -> go acc (i + 1) count
  in
  go [] 0 0

let select_one ~policy ~fast ?obs (g : Taskgen.Generator.generated) =
  let ts = g.Taskgen.Generator.taskset in
  let sys =
    Hydra.Analysis.make_system ts ~assignment:g.Taskgen.Generator.rt_assignment
  in
  Hydra.Period_selection.select ~policy ~fast ?obs sys ts.Task.sec

let timed_mode ~policy ~fast ?obs gens =
  let t0 = Hydra_obs.now_ns () in
  let outcomes = List.map (select_one ~policy ~fast ?obs) gens in
  (Hydra_obs.now_ns () - t0, outcomes)

let same_result a b =
  match (a, b) with
  | Hydra.Period_selection.Unschedulable, Hydra.Period_selection.Unschedulable
    ->
      true
  | Hydra.Period_selection.Schedulable xs, Hydra.Period_selection.Schedulable ys
    ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (x : Hydra.Period_selection.assignment)
                (y : Hydra.Period_selection.assignment) ->
             x.sec.Task.sec_id = y.sec.Task.sec_id
             && x.period = y.period && x.resp = y.resp)
           xs ys
  | _ -> false

let run () =
  let tasksets = getenv_int "BENCH_ANALYSIS_TASKSETS" 10 in
  let n_cores = getenv_int "BENCH_ANALYSIS_CORES" 4 in
  let seed = getenv_int "BENCH_ANALYSIS_SEED" 42 in
  let gens = gen_tasksets ~n:tasksets ~n_cores ~seed in
  let exhaustive_obs = Hydra_obs.create () in
  let row (policy, pr_name) =
    let obs =
      if policy = Hydra.Analysis.Exhaustive then Some exhaustive_obs else None
    in
    let naive_ns, naive = timed_mode ~policy ~fast:false gens in
    let fast_ns, fast = timed_mode ~policy ~fast:true ?obs gens in
    { pr_name;
      pr_naive_wall_ns = naive_ns;
      pr_fast_wall_ns = fast_ns;
      pr_speedup =
        (if fast_ns > 0 then float_of_int naive_ns /. float_of_int fast_ns
         else Float.nan);
      pr_results_match = List.for_all2 same_result naive fast }
  in
  let rows =
    List.map row
      [ (Hydra.Analysis.Top_delta, "top_delta");
        (Hydra.Analysis.Exhaustive, "exhaustive") ]
  in
  { br_tasksets = List.length gens;
    br_n_cores = n_cores;
    br_seed = seed;
    br_rows = rows;
    br_results_match = List.for_all (fun r -> r.pr_results_match) rows;
    br_counters = Hydra_obs.counters exhaustive_obs }

let to_json (r : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"hydra_c.bench_analysis/1\",\n";
  Printf.bprintf buf "  \"tasksets\": %d,\n" r.br_tasksets;
  Printf.bprintf buf "  \"n_cores\": %d,\n" r.br_n_cores;
  Printf.bprintf buf "  \"seed\": %d,\n" r.br_seed;
  Buffer.add_string buf "  \"policies\": {";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n    \"%s\": { \"naive_wall_ns\": %d, \"fast_wall_ns\": %d, \
         \"speedup\": %.4f, \"results_match\": %b }"
        row.pr_name row.pr_naive_wall_ns row.pr_fast_wall_ns row.pr_speedup
        row.pr_results_match)
    r.br_rows;
  Buffer.add_string buf "\n  },\n";
  Printf.bprintf buf "  \"results_match\": %b,\n" r.br_results_match;
  Buffer.add_string buf "  \"counters\": {";
  List.iteri
    (fun i (c : Hydra_obs.counter_view) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\n    \"%s\": %d" c.Hydra_obs.cv_name
        c.Hydra_obs.cv_total)
    r.br_counters;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let write ?(path = "BENCH_analysis.json") r =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json r))

let pp_summary ppf (r : t) =
  Format.fprintf ppf
    "analysis fast path (%d tasksets, M=%d, seed %d):@." r.br_tasksets
    r.br_n_cores r.br_seed;
  List.iter
    (fun row ->
      Format.fprintf ppf
        "  %-10s naive %8.2f ms   fast %8.2f ms   speedup %5.2fx   %s@."
        row.pr_name
        (float_of_int row.pr_naive_wall_ns /. 1e6)
        (float_of_int row.pr_fast_wall_ns /. 1e6)
        row.pr_speedup
        (if row.pr_results_match then "results match"
         else "RESULTS DIFFER"))
    r.br_rows
