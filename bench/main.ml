(* Benchmark harness: one Bechamel test per paper table/figure (plus
   the ablations), and — before timing — a reduced-scale regeneration
   of every artifact so that `dune exec bench/main.exe` prints the
   same rows/series the paper reports.

   Full-scale regeneration (paper-sized parameters) is the CLI's job:
   `dune exec bin/hydra_experiments.exe -- all --tasksets-per-group 250`.

   Scale knobs (environment variables):
     BENCH_PER_GROUP   tasksets per utilization group for the printed
                       sweeps (default 25; the paper uses 250)
     BENCH_TRIALS      rover trials for the printed Fig. 5 (default 35)
     BENCH_QUOTA_MS    Bechamel time quota per test (default 500)
     BENCH_JOBS        worker domains for the printed artifacts and the
                       parallel half of the seq-vs-par comparison
                       (default: Parallel.Pool.default_jobs (), i.e.
                       recommended_domain_count - 1; results are
                       identical for any value — doc/PARALLELISM.md).

   Besides the printed output, the harness writes BENCH_sweep.json
   (schema "hydra_c.bench_sweep/1") in the working directory — the
   machine-readable record of the seq-vs-par comparison sweep:

     {
       "schema": "hydra_c.bench_sweep/1",
       "jobs": N,                  -- BENCH_JOBS (parallel run)
       "seq_wall_ns": ns,          -- wall clock of the sweep at jobs=1
       "par_wall_ns": ns,          -- wall clock of the same sweep at jobs=N
       "speedup": x,               -- seq_wall_ns / par_wall_ns
       "counters_match_across_jobs": bool,
                                   -- Hydra_obs counter totals (fixed-point
                                      iterations, search probes, ...) equal
                                      between the two runs: the analytical
                                      work is identical, only the wall
                                      clock moves (doc/PARALLELISM.md)
       "counters": { "name": total, ... }
                                   -- Hydra_obs counters of the jobs=N run
                                      (catalog: doc/OBSERVABILITY.md)
     }

   It also writes BENCH_metrics.json — the full Hydra_obs snapshot of
   the parallel comparison run (schema "hydra_c.metrics/1", the same
   format as the CLI's --metrics-out; doc/OBSERVABILITY.md) — and
   BENCH_analysis.json (schema "hydra_c.bench_analysis/1";
   knobs BENCH_ANALYSIS_TASKSETS / _CORES / _SEED) — the naive-vs-fast
   comparison of the WCRT analysis fast path at both carry-in policies,
   with a results_match bit and the cache/pruning counters; see
   bench/analysis_record.ml and doc/PERFORMANCE.md.
   bench/analysis_bench.exe emits just that file (the CI gate).
   BENCH_sim.json (schema "hydra_c.bench_sim/1"; knobs BENCH_SIM_...)
   is the simulator-side counterpart -- the naive-vs-fast engine comparison
   over the rover, validation and campaign workloads with per-workload
   results_match bits; see bench/sim_record.ml and doc/SIMULATOR.md.
   bench/sim_bench.exe emits just that file (the CI gate). *)

open Bechamel
open Toolkit

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let per_group = getenv_int "BENCH_PER_GROUP" 25
let trials = getenv_int "BENCH_TRIALS" 35
let quota_ms = getenv_int "BENCH_QUOTA_MS" 500
let jobs = getenv_int "BENCH_JOBS" (Parallel.Pool.default_jobs ())

let std = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Part 1: print every table and figure at reduced scale. *)

let print_artifacts () =
  Format.printf "==================================================@.";
  Format.printf
    "Artifact regeneration (reduced scale: %d/group, %d trials, %d jobs)@."
    per_group trials jobs;
  Format.printf "==================================================@.";
  Experiments.Tables.render_all std ();
  let fig5 = Experiments.Fig5.run ~trials ~jobs () in
  Experiments.Fig5.render std fig5;
  let fig5_adapted =
    Experiments.Fig5.run ~trials ~deployment:Experiments.Fig5.Adapted ~jobs ()
  in
  Experiments.Fig5.render std fig5_adapted;
  List.iter
    (fun n_cores ->
      let sweep =
        Experiments.Sweep.run ~n_cores ~per_group ~seed:42 ~jobs ()
      in
      Experiments.Fig6.render std (Experiments.Fig6.of_sweep sweep);
      let fig7 = Experiments.Fig7.of_sweep sweep in
      Experiments.Fig7.render_a std fig7;
      Experiments.Fig7.render_b std fig7)
    [ 2; 4 ];
  Experiments.Ablation.run_all ~jobs std ~seed:42
    ~per_group:(max 1 (per_group / 5))
    ~cores:[ 2 ]

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timings — each test regenerates one artifact at a
   small fixed scale so the numbers compare machine-to-machine. *)

let rover_taskset = Security.Rover.taskset ()
let rover_assignment = Security.Rover.rt_assignment ()

let rover_system () =
  Hydra.Analysis.make_system rover_taskset ~assignment:rover_assignment

let test_table1 =
  Test.make ~name:"table1_catalog"
    (Staged.stage (fun () ->
         Format.asprintf "%a" Security.Catalog.pp_table ()))

let test_table2 =
  Test.make ~name:"table2_platform"
    (Staged.stage (fun () -> Format.asprintf "%a" Security.Rover.pp_table2 ()))

let test_table3 =
  Test.make ~name:"table3_taskgen"
    (Staged.stage (fun () ->
         let rng = Taskgen.Rng.create 1 in
         Taskgen.Generator.generate
           (Taskgen.Generator.default_config ~n_cores:2)
           rng ~group:4))

let test_fig5a =
  Test.make ~name:"fig5a_detection"
    (Staged.stage (fun () ->
         Experiments.Fig5.run ~seed:1 ~trials:2 ~horizon:30000 ()))

let test_fig5b =
  (* context-switch accounting alone: one 45 s rover simulation *)
  Test.make ~name:"fig5b_context_switches"
    (Staged.stage (fun () ->
         let bounds = [| 10000; 10000 |] in
         let built =
           Sim.Scenario.of_taskset rover_taskset
             ~rt_assignment:rover_assignment
             ~policy:Sim.Policy.Semi_partitioned ~sec_periods:bounds ()
         in
         Sim.Engine.run ~n_cores:2 ~horizon:45000 built.Sim.Scenario.tasks))

let small_sweep ?policy ?config n_cores =
  Experiments.Sweep.run ?policy ?config ~jobs:1 ~n_cores ~per_group:5 ~seed:1
    ()

(* Sequential-vs-parallel comparison on the same Fig. 6/7-shaped sweep:
   identical work, jobs:1 vs BENCH_JOBS domains. The speedup line
   printed after the timing table is the ratio of these two. *)
let comparison_sweep ?obs ~jobs () =
  Experiments.Sweep.run ?obs ~jobs ~n_cores:2 ~per_group:10 ~seed:3 ()

let test_sweep_seq =
  Test.make ~name:"sweep_seq_jobs1"
    (Staged.stage (fun () -> comparison_sweep ~jobs:1 ()))

let test_sweep_par =
  Test.make ~name:"sweep_par_jobsN"
    (Staged.stage (fun () -> comparison_sweep ~jobs ()))

let test_fig6 =
  Test.make ~name:"fig6_period_distance"
    (Staged.stage (fun () -> Experiments.Fig6.of_sweep (small_sweep 2)))

let test_fig7a =
  Test.make ~name:"fig7a_acceptance"
    (Staged.stage (fun () -> Experiments.Fig7.of_sweep (small_sweep 2)))

let test_fig7b =
  Test.make ~name:"fig7b_distance"
    (Staged.stage (fun () ->
         Experiments.Fig7.render_b Format.str_formatter
           (Experiments.Fig7.of_sweep (small_sweep 2));
         Format.flush_str_formatter ()))

let test_ablation_carry_in =
  Test.make ~name:"ablation_carry_in"
    (Staged.stage (fun () ->
         let config =
           { (Taskgen.Generator.default_config ~n_cores:2) with
             Taskgen.Generator.sec_count = (2, 4) }
         in
         small_sweep ~policy:Hydra.Analysis.Exhaustive ~config 2))

let test_ablation_partition =
  Test.make ~name:"ablation_partition"
    (Staged.stage (fun () ->
         let config =
           { (Taskgen.Generator.default_config ~n_cores:2) with
             Taskgen.Generator.partition_heuristic =
               Rtsched.Partition.Worst_fit }
         in
         small_sweep ~config 2))

(* Core micro-benchmarks: the analysis primitives the figures lean on. *)

let test_rta_uniproc =
  Test.make ~name:"micro_rta_uniproc"
    (Staged.stage (fun () ->
         Rtsched.Rta_uniproc.response_time
           ~hp:
             [ { Rtsched.Rta_uniproc.hp_wcet = 240; hp_period = 500 };
               { Rtsched.Rta_uniproc.hp_wcet = 1120; hp_period = 5000 } ]
           ~wcet:5342 ~limit:10000 ()))

let test_wcrt_semi_partitioned =
  Test.make ~name:"micro_wcrt_semi_partitioned"
    (Staged.stage
       (let sys = rover_system () in
        fun () ->
          Hydra.Analysis.response_time sys
            ~hp:
              [ { Hydra.Analysis.hp_task = rover_taskset.Rtsched.Task.sec.(0);
                  hp_period = 7582; hp_resp = 7582 } ]
            ~wcet:223 ~limit:10000))

let test_period_selection =
  Test.make ~name:"micro_period_selection_rover"
    (Staged.stage
       (let sys = rover_system () in
        fun () ->
          Hydra.Period_selection.select sys rover_taskset.Rtsched.Task.sec))

let test_randfixedsum =
  Test.make ~name:"micro_randfixedsum_20"
    (Staged.stage
       (let rng = Taskgen.Rng.create 7 in
        fun () ->
          Taskgen.Randfixedsum.sample rng ~n:20 ~total:6.0 ~lo:0.0 ~hi:1.0))

let test_integrity_scan =
  Test.make ~name:"micro_integrity_full_scan"
    (Staged.stage
       (let fs = Security.Rover.image_store () in
        let checker = Security.Integrity_checker.create fs ~n_regions:64 in
        fun () -> Security.Integrity_checker.check_all checker))

let test_period_selection_extended =
  Test.make ~name:"micro_period_selection_extended_rover"
    (Staged.stage
       (let ts = Security.Rover.extended_taskset () in
        let sys =
          Hydra.Analysis.make_system ts ~assignment:rover_assignment
        in
        fun () -> Hydra.Period_selection.select sys ts.Rtsched.Task.sec))

let test_hydra_coordinated =
  Test.make ~name:"micro_hydra_coordinated_rover"
    (Staged.stage
       (let sys = rover_system () in
        fun () ->
          Hydra.Baseline_hydra.allocate_coordinated sys
            rover_taskset.Rtsched.Task.sec))

let test_packet_inspection =
  Test.make ~name:"micro_packet_full_inspection"
    (Staged.stage
       (let cap = Security.Packet_monitor.create_capture ~capacity:256 in
        let rng = Taskgen.Rng.create 5 in
        List.iter
          (Security.Packet_monitor.ingest cap)
          (Security.Packet_monitor.benign_traffic rng ~now:0 ~count:256);
        let mon =
          Security.Packet_monitor.create cap
            Security.Packet_monitor.default_rules ~n_regions:16
        in
        fun () -> Security.Packet_monitor.inspect_all mon))

let test_hpc_check =
  Test.make ~name:"micro_hpc_full_check"
    (Staged.stage
       (let tasks = [ "navigation"; "camera" ] in
        let stream = Security.Hpc_monitor.create_stream ~tasks in
        let rng = Taskgen.Rng.create 6 in
        let mon = Security.Hpc_monitor.calibrate rng ~tasks stream in
        for _ = 1 to 8 do
          Security.Hpc_monitor.push stream
            (Security.Hpc_monitor.clean_sample rng ~task:"navigation");
          Security.Hpc_monitor.push stream
            (Security.Hpc_monitor.clean_sample rng ~task:"camera")
        done;
        fun () -> Security.Hpc_monitor.check_all mon))

let test_sim_extended_rover =
  Test.make ~name:"micro_sim_extended_rover_45s"
    (Staged.stage
       (let ts = Security.Rover.extended_taskset () in
        let periods = Array.make (Array.length ts.Rtsched.Task.sec) 0 in
        Array.iter
          (fun (s : Rtsched.Task.sec_task) ->
            periods.(s.Rtsched.Task.sec_id) <- s.Rtsched.Task.sec_period_max)
          ts.Rtsched.Task.sec;
        let built =
          Sim.Scenario.of_taskset ts ~rt_assignment:rover_assignment
            ~policy:Sim.Policy.Semi_partitioned ~sec_periods:periods ()
        in
        fun () ->
          Sim.Engine.run ~n_cores:2 ~horizon:45000 built.Sim.Scenario.tasks))

let tests =
  Test.make_grouped ~name:"hydra_c"
    [ test_table1; test_table2; test_table3; test_fig5a; test_fig5b;
      test_fig6; test_fig7a; test_fig7b; test_ablation_carry_in;
      test_ablation_partition; test_rta_uniproc; test_wcrt_semi_partitioned;
      test_period_selection; test_period_selection_extended;
      test_hydra_coordinated; test_randfixedsum; test_integrity_scan;
      test_packet_inspection; test_hpc_check; test_sim_extended_rover;
      test_sweep_seq; test_sweep_par ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.millisecond (float_of_int quota_ms))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Format.printf "@.==================================================@.";
  Format.printf "Bechamel timings (per-run wall clock)@.";
  Format.printf "==================================================@.";
  Format.printf "%-42s %14s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "-"
        else if ns > 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "%-42s %14s@." name pretty)
    rows;
  (* Parallel speedup on the comparison sweep (same records either way). *)
  let estimate suffix =
    List.find_map
      (fun (name, ns) ->
        if String.ends_with ~suffix name && not (Float.is_nan ns) then Some ns
        else None)
      rows
  in
  match (estimate "sweep_seq_jobs1", estimate "sweep_par_jobsN") with
  | Some seq, Some par when par > 0.0 ->
      Format.printf
        "@.parallel sweep speedup (jobs=%d vs jobs=1): %.2fx@." jobs
        (seq /. par)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Part 3: BENCH_sweep.json — schema documented in the file header. *)

let emit_sweep_json () =
  let timed_run ~jobs =
    let obs = Hydra_obs.create () in
    let t0 = Hydra_obs.now_ns () in
    let (_ : Experiments.Sweep.t) = comparison_sweep ~obs ~jobs () in
    (Hydra_obs.now_ns () - t0, Hydra_obs.counters obs, obs)
  in
  let seq_wall, seq_counters, _ = timed_run ~jobs:1 in
  let par_wall, par_counters, par_obs = timed_run ~jobs in
  (* Full registry snapshot of the parallel run (counters, selected-
     period histograms, span counts) — same schema as the CLI's
     --metrics-out. *)
  Hydra_obs.Snapshot.write par_obs ~path:"BENCH_metrics.json";
  let speedup =
    if par_wall > 0 then float_of_int seq_wall /. float_of_int par_wall
    else Float.nan
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"hydra_c.bench_sweep/1\",\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"seq_wall_ns\": %d,\n" seq_wall;
  Printf.bprintf buf "  \"par_wall_ns\": %d,\n" par_wall;
  (* json_float: "null" rather than bare NaN when par_wall is 0. *)
  Printf.bprintf buf "  \"speedup\": %s,\n"
    (Hydra_obs.Snapshot.json_float speedup);
  Printf.bprintf buf "  \"counters_match_across_jobs\": %b,\n"
    (seq_counters = par_counters);
  Buffer.add_string buf "  \"counters\": {";
  List.iteri
    (fun i (c : Hydra_obs.counter_view) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\n    \"%s\": %d" c.Hydra_obs.cv_name
        c.Hydra_obs.cv_total)
    par_counters;
  Buffer.add_string buf "\n  }\n}\n";
  Out_channel.with_open_text "BENCH_sweep.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Format.printf
    "@.wrote BENCH_sweep.json (speedup %.2fx, counters %s) and \
     BENCH_metrics.json@."
    speedup
    (if seq_counters = par_counters then "stable across jobs"
     else "UNSTABLE across jobs")

(* ------------------------------------------------------------------ *)
(* Part 4: BENCH_analysis.json — naive vs fast analysis paths
   (bench/analysis_record.ml, doc/PERFORMANCE.md). *)

let emit_analysis_json () =
  let r = Analysis_record.run () in
  Analysis_record.write r;
  Format.printf "@.";
  Analysis_record.pp_summary std r;
  Format.printf "wrote BENCH_analysis.json@."

(* ------------------------------------------------------------------ *)
(* Part 5: BENCH_sim.json — naive vs fast simulation engines
   (bench/sim_record.ml, doc/SIMULATOR.md). *)

let emit_sim_json () =
  let r = Sim_record.run () in
  Sim_record.write r;
  Format.printf "@.";
  Sim_record.pp_summary std r;
  Format.printf "wrote BENCH_sim.json@."

let () =
  print_artifacts ();
  run_benchmarks ();
  emit_sweep_json ();
  emit_analysis_json ();
  emit_sim_json ()
